// Package kernel simulates the NT kernel's process, thread, module and
// driver bookkeeping on top of a kmem arena. Object structures are laid
// out in arena memory with real intrusive LIST_ENTRY links, so that:
//
//   - Direct Kernel Object Manipulation (the FU rootkit) is literal
//     pointer surgery that this package cannot "see through";
//   - the GhostBuster low-level scan is a traversal of the same bytes;
//   - a crash dump is a copy of the arena, and the same traversal code
//     runs against it offline (kmem.Reader abstracts live vs dump).
//
// Two kernel data structures track processes, mirroring the paper's
// normal and advanced low-level scan modes:
//
//   - PsActiveProcessHead, the doubly-linked Active Process List. This is
//     the "truth approximation": it exists to answer enumeration queries
//     and a process removed from it keeps running.
//   - the CID handle table (PspCidTable), which maps every process and
//     thread id to its object. The scheduler needs threads here, so a
//     process that owns at least one schedulable thread is visible via
//     this table even after DKOM unlinking.
package kernel

import (
	"fmt"

	"ghostbuster/internal/kmem"
)

// EPROCESS field offsets within an arena allocation.
const (
	EprocActiveLinks = 0x00 // LIST_ENTRY on the Active Process List
	EprocPid         = 0x10 // u64
	EprocImageName   = 0x18 // 32-byte NUL-padded short name
	EprocLdrHead     = 0x38 // LIST_ENTRY: head of the PEB module list
	EprocThreadHead  = 0x48 // LIST_ENTRY: head of the thread list
	EprocParentPid   = 0x58 // u64
	EprocFlags       = 0x60 // u64, bit 0 = exited
	EprocImagePath   = 0x68 // u64 pointer to a string cell (full path)
	EprocVadHead     = 0x70 // LIST_ENTRY: head of the VAD image list
	EprocPoolTag     = 0x80 // u32 'Proc' allocation tag (cleared on exit)
	EprocSize        = 0x88

	eprocNameCap = 32

	// PoolTagProc is the little-endian u32 of the ASCII bytes "Proc" —
	// the allocation tag every live EPROCESS carries, and the needle a
	// pool-carving scan sweeps the arena for. ExitProcess clears it, so
	// carving never resurrects freed pool residue.
	PoolTagProc uint32 = 0x636F7250
)

// ETHREAD field offsets.
const (
	EthreadListEntry = 0x00 // LIST_ENTRY on the owning process's thread list
	EthreadTid       = 0x10 // u64
	EthreadOwner     = 0x18 // u64: EPROCESS address
	EthreadState     = 0x20 // u64
	EthreadSize      = 0x28
)

// LDR_DATA_TABLE_ENTRY field offsets (used for both per-process modules
// and the system driver list).
const (
	LdrLinks    = 0x00 // LIST_ENTRY
	LdrBase     = 0x10 // u64
	LdrSize     = 0x18 // u64
	LdrNamePtr  = 0x20 // u64 pointer to a string cell
	LdrEntrySz  = 0x28
	flagsExited = 1
)

// CID table entry layout: fixed-capacity array of 24-byte slots.
const (
	cidHdrCapacity = 0x00 // u64
	cidHdrSize     = 0x10 // header bytes before slots
	cidSlotID      = 0x00
	cidSlotObj     = 0x08
	cidSlotType    = 0x10
	cidSlotSize    = 24

	// CID object types.
	CidFree    = 0
	CidProcess = 1
	CidThread  = 2
)

// Layout records the addresses of the kernel's global structures. A
// crash dump stores it in the dump header so offline analysis can find
// the lists.
type Layout struct {
	ActiveProcessHead uint64
	LoadedModuleHead  uint64
	CidTable          uint64
}

// maxWalk bounds list walks as corruption protection.
const maxWalk = 1 << 16

// stringCell: u32 byte length followed by the bytes. Stands in for the
// kernel's UNICODE_STRING. A zeroed length reads as the empty string —
// which is exactly how Vanquish "blanks out" a module pathname.
func readStringCell(r kmem.Reader, addr uint64) (string, error) {
	if addr == 0 {
		return "", nil
	}
	n, err := r.ReadU32(addr)
	if err != nil {
		return "", err
	}
	if n == 0 {
		return "", nil
	}
	if n > 4096 {
		return "", fmt.Errorf("kernel: string cell at %#x has absurd length %d", addr, n)
	}
	b, err := r.ReadBytes(addr+4, int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// ProcView is one process as seen by a kernel-structure traversal.
type ProcView struct {
	Addr      uint64
	Pid       uint64
	Name      string
	ImagePath string
	ParentPid uint64
	Exited    bool
	Threads   int
}

// ModView is one loaded module (or driver) from an LDR list.
type ModView struct {
	Addr uint64
	Base uint64
	Size uint64
	Path string // empty when the name cell has been blanked
}

// readProc decodes the EPROCESS at addr.
func readProc(r kmem.Reader, addr uint64) (ProcView, error) {
	var p ProcView
	p.Addr = addr
	var err error
	if p.Pid, err = r.ReadU64(addr + EprocPid); err != nil {
		return p, err
	}
	if p.Name, err = r.ReadCString(addr+EprocImageName, eprocNameCap); err != nil {
		return p, err
	}
	if p.ParentPid, err = r.ReadU64(addr + EprocParentPid); err != nil {
		return p, err
	}
	flags, err := r.ReadU64(addr + EprocFlags)
	if err != nil {
		return p, err
	}
	p.Exited = flags&flagsExited != 0
	pathPtr, err := r.ReadU64(addr + EprocImagePath)
	if err != nil {
		return p, err
	}
	if p.ImagePath, err = readStringCell(r, pathPtr); err != nil {
		return p, err
	}
	threads, err := kmem.WalkList(r, addr+EprocThreadHead, maxWalk)
	if err != nil {
		return p, err
	}
	p.Threads = len(threads)
	return p, nil
}

// WalkActiveProcessList traverses the Active Process List — the kernel's
// "truth approximation" for process enumeration. This is GhostBuster's
// normal-mode low-level scan. FU-style DKOM hides from this walk.
func WalkActiveProcessList(r kmem.Reader, layout Layout) ([]ProcView, error) {
	entries, err := kmem.WalkList(r, layout.ActiveProcessHead, maxWalk)
	if err != nil {
		return nil, err
	}
	out := make([]ProcView, 0, len(entries))
	for _, e := range entries {
		// The list entry is at offset 0 of EPROCESS, so the entry address
		// is the object address (CONTAINING_RECORD with zero offset).
		p, err := readProc(r, e-EprocActiveLinks)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// WalkCidProcesses traverses the CID handle table and returns every
// process that owns at least one thread — the paper's advanced mode,
// which "travers[es] another kernel data structure that maintains the
// process list to support OS functionalities other than responding to
// enumeration queries". DKOM unlinking does not hide from this walk.
func WalkCidProcesses(r kmem.Reader, layout Layout) ([]ProcView, error) {
	capacity, err := r.ReadU64(layout.CidTable + cidHdrCapacity)
	if err != nil {
		return nil, err
	}
	if capacity > maxWalk {
		return nil, fmt.Errorf("kernel: CID table capacity %d exceeds sanity bound", capacity)
	}
	// Collect thread owners, then all process objects.
	owners := map[uint64]int{}
	procAddrs := map[uint64]bool{}
	for i := uint64(0); i < capacity; i++ {
		slot := layout.CidTable + cidHdrSize + i*cidSlotSize
		typ, err := r.ReadU64(slot + cidSlotType)
		if err != nil {
			return nil, err
		}
		obj, err := r.ReadU64(slot + cidSlotObj)
		if err != nil {
			return nil, err
		}
		switch typ {
		case CidThread:
			owner, err := r.ReadU64(obj + EthreadOwner)
			if err != nil {
				return nil, err
			}
			owners[owner]++
		case CidProcess:
			procAddrs[obj] = true
		}
	}
	// Consistency check: every thread's owner must be a process object in
	// this same table. A dangling owner means the table bytes are corrupt
	// (torn write, bad dump, bit damage); trusting the walk would silently
	// drop the real owner, so fail loudly instead.
	for owner := range owners {
		if !procAddrs[owner] {
			return nil, fmt.Errorf("kernel: CID table inconsistent: thread owner %#x is not a process object", owner)
		}
	}
	out := make([]ProcView, 0, len(owners))
	for addr := range procAddrs {
		if owners[addr] == 0 {
			continue // no schedulable thread: not a live process
		}
		p, err := readProc(r, addr)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	sortProcs(out)
	return out, nil
}

// CarveProcesses sweeps the first limit bytes of kernel memory for live
// EPROCESS allocations by their pool tag, the way memory-forensics
// tools enumerate processes without trusting any list: a process
// unlinked from both the Active Process List and the CID table (the
// memory-only family) still occupies tagged pool. ExitProcess clears
// the tag, so freed residue is never resurrected. The walk reads
// nothing through kernel bookkeeping — only the Reader — so the same
// code carves live memory and crash dumps.
func CarveProcesses(r kmem.Reader, limit int) ([]ProcView, error) {
	out := []ProcView{}
	// The arena burns its first 64 bytes; a tag sits at EprocPoolTag
	// inside an 8-aligned allocation, so candidate tag offsets are
	// 8-aligned too.
	tail := EprocSize - EprocPoolTag
	for off := uint64(64 + EprocPoolTag); int(off)+tail <= limit; off += 8 {
		tag, err := r.ReadU32(kmem.Base + off)
		if err != nil {
			return nil, err
		}
		if tag != PoolTagProc {
			continue
		}
		eproc := kmem.Base + off - EprocPoolTag
		// Structural sanity before decoding: a stray "Proc" in string
		// bytes will not also carry a plausible flags word and pid.
		flags, err := r.ReadU64(eproc + EprocFlags)
		if err != nil {
			return nil, err
		}
		if flags&^uint64(flagsExited) != 0 || flags&flagsExited != 0 {
			continue
		}
		pid, err := r.ReadU64(eproc + EprocPid)
		if err != nil {
			return nil, err
		}
		if pid == 0 || pid%4 != 0 || pid > maxWalk {
			continue
		}
		p, err := readProc(r, eproc)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	sortProcs(out)
	return out, nil
}

// WalkModuleList reads the LDR list headed at head (a process's module
// list or the system driver list).
func WalkModuleList(r kmem.Reader, head uint64) ([]ModView, error) {
	entries, err := kmem.WalkList(r, head, maxWalk)
	if err != nil {
		return nil, err
	}
	out := make([]ModView, 0, len(entries))
	for _, e := range entries {
		m := ModView{Addr: e}
		if m.Base, err = r.ReadU64(e + LdrBase); err != nil {
			return nil, err
		}
		if m.Size, err = r.ReadU64(e + LdrSize); err != nil {
			return nil, err
		}
		namePtr, err := r.ReadU64(e + LdrNamePtr)
		if err != nil {
			return nil, err
		}
		if m.Path, err = readStringCell(r, namePtr); err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// WalkDrivers reads the system driver list (PsLoadedModuleList).
func WalkDrivers(r kmem.Reader, layout Layout) ([]ModView, error) {
	return WalkModuleList(r, layout.LoadedModuleHead)
}

// ProcessModules reads the PEB module list of the process whose EPROCESS
// is at addr. This is the user-memory structure the query APIs consult —
// the one Vanquish tampers with.
func ProcessModules(r kmem.Reader, addr uint64) ([]ModView, error) {
	return WalkModuleList(r, addr+EprocLdrHead)
}

// ProcessVadImages reads the VAD image list of the process at addr: the
// kernel's own record of every image mapped into the address space. The
// loader cannot run an image without a mapping, so this list is the
// module truth GhostBuster's low-level scan extracts ("the truth of all
// modules loaded by all processes from a kernel data structure").
func ProcessVadImages(r kmem.Reader, addr uint64) ([]ModView, error) {
	return WalkModuleList(r, addr+EprocVadHead)
}

func sortProcs(ps []ProcView) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].Pid < ps[j-1].Pid; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}
