package crashdump

import (
	"fmt"
	"strings"

	"ghostbuster/internal/core"
	"ghostbuster/internal/machine"
)

// This file implements the complete §4 outside-the-box flows for
// volatile state: take the inside high-level scan, induce the blue
// screen, and diff against the dump's kernel-structure walk.

// OutsideProcessCheck runs the outside-the-box hidden-process detection:
// inside API scan vs crash-dump traversal (advanced selects the CID
// walk).
func OutsideProcessCheck(m *machine.Machine, advanced bool) (*core.Report, error) {
	high, err := core.ScanProcsHigh(m, m.SystemCall())
	if err != nil {
		return nil, err
	}
	dumpBytes, err := Write(m)
	if err != nil {
		return nil, err
	}
	d, err := Parse(dumpBytes)
	if err != nil {
		return nil, fmt.Errorf("crashdump: parsing own dump: %w", err)
	}
	low, err := core.ScanProcsFromDump(d.Mem, d.Layout, advanced)
	if err != nil {
		return nil, err
	}
	return core.SealedDiff(high, low, core.DiffOptions{})
}

// OutsideModuleCheck runs the outside-the-box hidden-module detection:
// per-process inside API module scan vs the dump's VAD image lists.
func OutsideModuleCheck(m *machine.Machine) (*core.Report, error) {
	pids, err := core.TruthPids(m)
	if err != nil {
		return nil, err
	}
	high, err := core.ScanModsHigh(m, m.SystemCall(), pids)
	if err != nil {
		return nil, err
	}
	dumpBytes, err := Write(m)
	if err != nil {
		return nil, err
	}
	d, err := Parse(dumpBytes)
	if err != nil {
		return nil, err
	}
	procs, err := d.Processes(true)
	if err != nil {
		return nil, err
	}
	low := core.NewModuleSnapshot(core.ViewCrashDump)
	for _, p := range procs {
		mods, err := d.Modules(p.Addr)
		if err != nil {
			continue
		}
		for _, mod := range mods {
			core.AddModuleEntry(low, p.Pid, mod.Path, mod.Base)
		}
	}
	return core.SealedDiff(high, low, core.DiffOptions{})
}

// DumpSummary renders a short description of a dump's contents for
// operator output.
func DumpSummary(d *Dump) (string, error) {
	procs, err := d.Processes(true)
	if err != nil {
		return "", err
	}
	drvs, err := d.Drivers()
	if err != nil {
		return "", err
	}
	names := make([]string, 0, len(procs))
	for _, p := range procs {
		names = append(names, p.Name)
	}
	return fmt.Sprintf("%d processes (%s), %d drivers", len(procs), strings.Join(names[:capInt(4, len(names))], ", ")+", ...", len(drvs)), nil
}

func capInt(limit, n int) int {
	if n < limit {
		return n
	}
	return limit
}
