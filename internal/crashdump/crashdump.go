// Package crashdump implements the paper's outside-the-box mechanism for
// volatile state (§4): induce a blue screen to write a kernel memory
// dump, then run the same kernel-structure traversal code against the
// dump file offline. The dump is a "truth approximation": future
// ghostware could trap the blue-screen event and scrub itself from the
// image, which is why the paper prefers DMA-based capture (Copilot
// [PFM+04]) when hardware allows.
package crashdump

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"ghostbuster/internal/kernel"
	"ghostbuster/internal/kmem"
	"ghostbuster/internal/machine"
	"ghostbuster/internal/vtime"
)

const (
	magic      = "PAGEDUMP"
	headerSize = 64
	version    = 1
)

// ErrBadDump reports an unparseable dump file.
var ErrBadDump = errors.New("crashdump: not a valid dump file")

// Dump is a parsed kernel memory dump.
type Dump struct {
	Layout kernel.Layout
	Mem    *kmem.ImageReader
}

// Write induces a kernel crash on the machine and returns the dump file
// bytes. Virtual time is charged for writing kernel memory to disk
// (the paper measured 15–45 s).
func Write(m *machine.Machine) ([]byte, error) {
	img := m.Kern.DumpImage()
	layout := m.Kern.Layout()
	out := make([]byte, headerSize+len(img))
	copy(out, magic)
	binary.LittleEndian.PutUint32(out[8:], version)
	binary.LittleEndian.PutUint64(out[16:], layout.ActiveProcessHead)
	binary.LittleEndian.PutUint64(out[24:], layout.LoadedModuleHead)
	binary.LittleEndian.PutUint64(out[32:], layout.CidTable)
	binary.LittleEndian.PutUint64(out[40:], uint64(len(img)))
	copy(out[headerSize:], img)
	chargeDumpTime(m.Clock, len(img))
	return out, nil
}

// chargeDumpTime models the blue-screen dump write: a fixed crash/reboot
// overhead plus disk time for the memory image. The paper's machines
// (128–512 MB RAM era) landed in 15–45 s; we scale a represented memory
// size from the kernel arena.
func chargeDumpTime(clock *vtime.Clock, arenaBytes int) {
	clock.Advance(12 * time.Second)
	repBytes := int64(arenaBytes) * 4096 // each simulated object stands for pages of state
	if repBytes > 2<<30 {
		repBytes = 2 << 30
	}
	clock.ChargeBytes(repBytes, 40<<20)
}

// Parse validates and opens a dump file.
func Parse(dump []byte) (*Dump, error) {
	if len(dump) < headerSize || string(dump[:8]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadDump)
	}
	if binary.LittleEndian.Uint32(dump[8:]) != version {
		return nil, fmt.Errorf("%w: unsupported version", ErrBadDump)
	}
	memLen := binary.LittleEndian.Uint64(dump[40:])
	// Compare against the remaining bytes, never headerSize+memLen: a
	// tampered length field near 2^64 would overflow that sum past the
	// bounds check and panic the slice below.
	if memLen > uint64(len(dump)-headerSize) {
		return nil, fmt.Errorf("%w: truncated memory image", ErrBadDump)
	}
	return &Dump{
		Layout: kernel.Layout{
			ActiveProcessHead: binary.LittleEndian.Uint64(dump[16:]),
			LoadedModuleHead:  binary.LittleEndian.Uint64(dump[24:]),
			CidTable:          binary.LittleEndian.Uint64(dump[32:]),
		},
		Mem: kmem.NewImageReader(dump[headerSize : headerSize+memLen]),
	}, nil
}

// Processes walks the dump's Active Process List (or the CID table in
// advanced mode), exactly as the live low-level scan does.
func (d *Dump) Processes(advanced bool) ([]kernel.ProcView, error) {
	if advanced {
		return kernel.WalkCidProcesses(d.Mem, d.Layout)
	}
	return kernel.WalkActiveProcessList(d.Mem, d.Layout)
}

// Modules returns the module truth (VAD image list) for a process found
// in the dump.
func (d *Dump) Modules(eprocAddr uint64) ([]kernel.ModView, error) {
	return kernel.ProcessVadImages(d.Mem, eprocAddr)
}

// Drivers returns the loaded-driver list from the dump.
func (d *Dump) Drivers() ([]kernel.ModView, error) {
	return kernel.WalkDrivers(d.Mem, d.Layout)
}
