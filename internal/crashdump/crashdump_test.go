package crashdump

import (
	"math/rand"
	"strings"
	"testing"

	"ghostbuster/internal/core"
	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/machine"
)

func smallMachine(t *testing.T) *machine.Machine {
	t.Helper()
	p := machine.DefaultProfile()
	p.DiskUsedGB = 1
	p.Churn = nil
	m, err := machine.New(p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWriteAndParseRoundTrip(t *testing.T) {
	m := smallMachine(t)
	before := m.Clock.Now()
	dump, err := Write(m)
	if err != nil {
		t.Fatal(err)
	}
	if m.Clock.Now() == before {
		t.Error("dump write charged no time")
	}
	d, err := Parse(dump)
	if err != nil {
		t.Fatal(err)
	}
	procs, err := d.Processes(false)
	if err != nil {
		t.Fatal(err)
	}
	live, err := m.Kern.Processes()
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != len(live) {
		t.Errorf("dump procs %d, live %d", len(procs), len(live))
	}
	drvs, err := d.Drivers()
	if err != nil {
		t.Fatal(err)
	}
	if len(drvs) == 0 {
		t.Error("dump has no drivers")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse(nil); err == nil {
		t.Error("nil should not parse")
	}
	if _, err := Parse([]byte("NOTADUMP........")); err == nil {
		t.Error("bad magic should not parse")
	}
	m := smallMachine(t)
	dump, err := Write(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(dump[:40]); err == nil {
		t.Error("truncated dump should not parse")
	}
	dump[8] = 99 // version
	if _, err := Parse(dump); err == nil {
		t.Error("wrong version should not parse")
	}
}

// TestDumpExposesDKOMHiddenProcess: the outside-the-box volatile-state
// scan — dump in advanced mode — sees the FU-hidden process even though
// the dump's Active Process List does not contain it.
func TestDumpExposesDKOMHiddenProcess(t *testing.T) {
	m := smallMachine(t)
	fu := ghostware.NewFU()
	if err := fu.Install(m); err != nil {
		t.Fatal(err)
	}
	if _, err := m.StartProcess("sneaky.exe", `C:\sneaky.exe`); err != nil {
		t.Fatal(err)
	}
	if err := fu.HideByName(m, "sneaky.exe"); err != nil {
		t.Fatal(err)
	}
	dump, err := Write(m)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Parse(dump)
	if err != nil {
		t.Fatal(err)
	}
	apl, err := d.Processes(false)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range apl {
		if p.Name == "sneaky.exe" {
			t.Error("unlinked process should be absent from the dump's APL")
		}
	}
	cid, err := d.Processes(true)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range cid {
		if p.Name == "sneaky.exe" {
			found = true
		}
	}
	if !found {
		t.Error("dump CID walk should expose the hidden process")
	}
}

// TestOutsideProcessDiffViaDump: high-level inside scan vs dump scan is
// the paper's outside-the-box process detection.
func TestOutsideProcessDiffViaDump(t *testing.T) {
	m := smallMachine(t)
	if err := ghostware.NewBerbew().Install(m); err != nil {
		t.Fatal(err)
	}
	high, err := core.ScanProcsHigh(m, m.SystemCall())
	if err != nil {
		t.Fatal(err)
	}
	dump, err := Write(m)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Parse(dump)
	if err != nil {
		t.Fatal(err)
	}
	low, err := core.ScanProcsFromDump(d.Mem, d.Layout, false)
	if err != nil {
		t.Fatal(err)
	}
	report, err := core.Diff(high, low, core.DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Hidden) != 1 {
		t.Fatalf("hidden = %+v", report.Hidden)
	}
	if !strings.HasSuffix(report.Hidden[0].ID, ".EXE") {
		t.Errorf("finding = %+v", report.Hidden[0])
	}
}

// TestDumpModuleTruth: VAD lists survive into the dump.
func TestDumpModuleTruth(t *testing.T) {
	m := smallMachine(t)
	pid, err := m.StartProcess("victim.exe", `C:\v.exe`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Kern.LoadModule(pid, `C:\inj.dll`); err != nil {
		t.Fatal(err)
	}
	dump, err := Write(m)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Parse(dump)
	if err != nil {
		t.Fatal(err)
	}
	procs, err := d.Processes(true)
	if err != nil {
		t.Fatal(err)
	}
	var addr uint64
	for _, p := range procs {
		if p.Pid == pid {
			addr = p.Addr
		}
	}
	if addr == 0 {
		t.Fatal("victim not in dump")
	}
	mods, err := d.Modules(addr)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, mod := range mods {
		if strings.Contains(strings.ToUpper(mod.Path), "INJ.DLL") {
			found = true
		}
	}
	if !found {
		t.Errorf("dump VAD modules = %+v", mods)
	}
}

// TestParseSurvivesRandomCorruption: a ghostware-tampered dump must
// never panic the offline analyzer (the paper notes future ghostware
// "can potentially trap the blue-screen events" and alter the dump).
func TestParseSurvivesRandomCorruption(t *testing.T) {
	m := smallMachine(t)
	base, err := Write(m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2025))
	for trial := 0; trial < 200; trial++ {
		img := append([]byte(nil), base...)
		for i := 0; i < 1+rng.Intn(64); i++ {
			img[rng.Intn(len(img))] = byte(rng.Intn(256))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panicked: %v", trial, r)
				}
			}()
			d, err := Parse(img)
			if err != nil {
				return
			}
			_, _ = d.Processes(false)
			_, _ = d.Processes(true)
			_, _ = d.Drivers()
		}()
	}
}

// TestOutsideProcessCheckFlow: the full §4 outside flow catches both an
// API-hiding process (normal dump walk) and a DKOM-hidden one (advanced
// dump walk).
func TestOutsideProcessCheckFlow(t *testing.T) {
	m := smallMachine(t)
	if err := ghostware.NewBerbew().Install(m); err != nil {
		t.Fatal(err)
	}
	fu := ghostware.NewFU()
	if err := fu.Install(m); err != nil {
		t.Fatal(err)
	}
	if _, err := m.StartProcess("lurker.exe", `C:\lurker.exe`); err != nil {
		t.Fatal(err)
	}
	if err := fu.HideByName(m, "lurker.exe"); err != nil {
		t.Fatal(err)
	}
	normal, err := OutsideProcessCheck(m, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(normal.Hidden) != 1 {
		t.Errorf("normal dump walk hidden = %+v (Berbew only)", normal.Hidden)
	}
	advanced, err := OutsideProcessCheck(m, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(advanced.Hidden) != 2 {
		t.Errorf("advanced dump walk hidden = %+v (Berbew + FU victim)", advanced.Hidden)
	}
}

// TestOutsideModuleCheckFlow: Vanquish's blanked DLL appears in the
// dump's VAD truth for every injected process.
func TestOutsideModuleCheckFlow(t *testing.T) {
	m := smallMachine(t)
	if err := ghostware.NewVanquish().Install(m); err != nil {
		t.Fatal(err)
	}
	r, err := OutsideModuleCheck(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) < 2 {
		t.Fatalf("hidden modules = %+v", r.Hidden)
	}
	for _, f := range r.Hidden {
		if !strings.Contains(f.ID, "VANQUISH.DLL") {
			t.Errorf("unexpected hidden module %s", f.ID)
		}
	}
}

func TestDumpSummary(t *testing.T) {
	m := smallMachine(t)
	dump, err := Write(m)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Parse(dump)
	if err != nil {
		t.Fatal(err)
	}
	s, err := DumpSummary(d)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "processes") || !strings.Contains(s, "drivers") {
		t.Errorf("summary = %q", s)
	}
}
