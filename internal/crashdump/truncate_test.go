package crashdump

import (
	"encoding/binary"
	"errors"
	"testing"
)

// TestParseShortInputsAtEveryBoundary: every prefix of the header region
// is rejected as ErrBadDump — no length is short enough to panic.
func TestParseShortInputsAtEveryBoundary(t *testing.T) {
	dump, err := Write(smallMachine(t))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < headerSize; n++ {
		_, err := Parse(dump[:n])
		if err == nil {
			t.Fatalf("Parse accepted a %d-byte header fragment", n)
		}
		if !errors.Is(err, ErrBadDump) {
			t.Fatalf("Parse(%d bytes) = %v, want ErrBadDump", n, err)
		}
	}
}

// TestParseTruncatedMemoryImage: a header whose declared image length
// overruns the file is rejected, including the overflow-bait case where
// the length field holds a huge value.
func TestParseTruncatedMemoryImage(t *testing.T) {
	dump, err := Write(smallMachine(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 8, len(dump) - headerSize - 1} {
		if _, err := Parse(dump[:len(dump)-cut]); !errors.Is(err, ErrBadDump) {
			t.Errorf("dump missing %d tail bytes: err = %v, want ErrBadDump", cut, err)
		}
	}
	huge := append([]byte(nil), dump...)
	binary.LittleEndian.PutUint64(huge[40:], ^uint64(0)-headerSize+1)
	if _, err := Parse(huge); !errors.Is(err, ErrBadDump) {
		t.Errorf("absurd image length: err = %v, want ErrBadDump", err)
	}
}

// TestWalksOnShortImageFailLoudly: a dump whose header is internally
// consistent but whose memory image stops short of the kernel structures
// must fail every walk with an error, never a panic or silent truncation
// of the process list.
func TestWalksOnShortImageFailLoudly(t *testing.T) {
	full, err := Write(smallMachine(t))
	if err != nil {
		t.Fatal(err)
	}
	memLen := int(binary.LittleEndian.Uint64(full[40:]))
	short := append([]byte(nil), full[:headerSize+memLen/2]...)
	binary.LittleEndian.PutUint64(short[40:], uint64(memLen/2))
	d, err := Parse(short)
	if err != nil {
		t.Fatalf("consistent short dump should parse: %v", err)
	}
	if _, err := d.Processes(false); err == nil {
		t.Error("APL walk over a half image returned no error")
	}
	if _, err := d.Processes(true); err == nil {
		t.Error("CID walk over a half image returned no error")
	}
	if _, err := d.Drivers(); err == nil {
		t.Error("driver walk over a half image returned no error")
	}
}

// TestParseZeroLengthImage: a header claiming an empty memory image
// parses, and the walks fail loudly against the empty arena.
func TestParseZeroLengthImage(t *testing.T) {
	dump, err := Write(smallMachine(t))
	if err != nil {
		t.Fatal(err)
	}
	empty := append([]byte(nil), dump[:headerSize]...)
	binary.LittleEndian.PutUint64(empty[40:], 0)
	d, err := Parse(empty)
	if err != nil {
		t.Fatalf("zero-image dump should parse: %v", err)
	}
	if _, err := d.Processes(false); err == nil {
		t.Error("walk over an empty image returned no error")
	}
}
