package winapi

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ghostbuster/internal/vtime"
)

// ErrNoBase reports a query on a chain whose base was never wired.
var ErrNoBase = errors.New("winapi: chain has no base implementation")

// ErrInjectedFault marks API failures fabricated by a fault-injection
// layer. High-level scanners must treat a call failing with this
// sentinel as a loud unit failure, never as "entry absent from this
// view" — silently dropping entries from the high view would turn
// injected faults into false cross-view differences.
var ErrInjectedFault = errors.New("winapi: injected fault")

// CallFault is a fault-injection hook that runs at every API entry
// point before the hook chain. Returning an error fails the call; the
// hook may instead charge latency to the call's clock and return nil.
type CallFault func(api API, call *Call) error

// CostModel prices API traffic in virtual time. The defaults are rough
// desktop-era figures; machine profiles override them.
type CostModel struct {
	PerAPICall time.Duration // fixed cost per query call
	PerEntry   time.Duration // marginal cost per returned entry
}

// DefaultCosts returns the baseline cost model.
func DefaultCosts() CostModel {
	return CostModel{PerAPICall: 50 * time.Microsecond, PerEntry: 2 * time.Microsecond}
}

// Stack is the API stack of one running OS instance: the installed hooks
// plus the base implementations. Queries may run concurrently with hook
// installs/uninstalls; the hook table is guarded by a read-write lock.
type Stack struct {
	mu      sync.RWMutex
	bases   Bases
	hooks   []*Hook
	nextSeq int
	clock   *vtime.Clock
	costs   CostModel
	fault   CallFault
}

// SetCallFault installs (or, with nil, removes) the call fault hook.
func (s *Stack) SetCallFault(f CallFault) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fault = f
}

// callFault runs the fault hook, if armed, for one API entry.
func (s *Stack) callFault(api API, call *Call) error {
	s.mu.RLock()
	f := s.fault
	s.mu.RUnlock()
	if f == nil {
		return nil
	}
	return f(api, call)
}

// NewStack builds a clean API stack over the given bases. The clock may
// be nil (no time accounting).
func NewStack(bases Bases, clock *vtime.Clock, costs CostModel) *Stack {
	return &Stack{bases: bases, clock: clock, costs: costs}
}

// Install adds a hook to the stack. Hooks at the same level stack in
// install order (later installs sit closer to the caller, like filter
// drivers attaching on top of a device stack).
func (s *Stack) Install(h *Hook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h.installSeq = s.nextSeq
	s.nextSeq++
	s.hooks = append(s.hooks, h)
}

// Uninstall removes every hook owned by owner and returns the count.
func (s *Stack) Uninstall(owner string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.hooks[:0]
	removed := 0
	for _, h := range s.hooks {
		if h.Owner == owner {
			removed++
			continue
		}
		kept = append(kept, h)
	}
	s.hooks = kept
	return removed
}

// Hooks returns descriptions of all installed hooks (for the taxonomy
// figures and the hook-detection baseline).
func (s *Stack) Hooks() []HookInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]HookInfo, 0, len(s.hooks))
	for _, h := range s.hooks {
		out = append(out, HookInfo{Owner: h.Owner, API: h.API, Level: h.Level, Technique: h.Technique})
	}
	return out
}

// chainHooks returns the hooks applicable to one call on one API,
// ordered innermost-first for wrapping: deepest level first, and within
// a level, earliest install first (so later installs end up outermost).
func (s *Stack) chainHooks(api API, entry Level, call *Call) []*Hook {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var hooks []*Hook
	for _, h := range s.hooks {
		if h.API != api {
			continue
		}
		if h.Level < entry {
			continue // the caller entered below this hook's level
		}
		if h.AppliesTo != nil && !h.AppliesTo(call.Proc) {
			continue
		}
		hooks = append(hooks, h)
	}
	sort.SliceStable(hooks, func(i, j int) bool {
		if hooks[i].Level != hooks[j].Level {
			return hooks[i].Level > hooks[j].Level
		}
		return hooks[i].installSeq < hooks[j].installSeq
	})
	return hooks
}

// charge bills the call's API traffic: to the call's lane clock when one
// is set, otherwise to the stack's machine clock.
func (s *Stack) charge(call *Call, entries int) {
	clock := s.clock
	if call != nil && call.Clock != nil {
		clock = call.Clock
	}
	if clock == nil {
		return
	}
	clock.Advance(s.costs.PerAPICall)
	clock.ChargeOps(int64(entries), s.costs.PerEntry)
}

// --- file enumeration --------------------------------------------------------

// enumDir dispatches a directory enumeration entering the chain at the
// given level.
func (s *Stack) enumDir(call *Call, dir string, entry Level) ([]DirEntry, error) {
	if s.bases.FileEnum == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoBase, APIFileEnum)
	}
	if err := s.callFault(APIFileEnum, call); err != nil {
		return nil, err
	}
	handler := s.bases.FileEnum
	for _, h := range s.chainHooks(APIFileEnum, entry, call) {
		if h.WrapFileEnum != nil {
			handler = h.WrapFileEnum(handler)
		}
	}
	out, err := handler(call, dir)
	s.charge(call, len(out))
	return out, err
}

// EnumDirWin32 lists a directory the way a Win32 program (or "dir /s
// /b") sees it: through the full hook chain, with Win32 filename
// restrictions applied at the API boundary. Files NTFS stores but Win32
// cannot address simply do not appear.
func (s *Stack) EnumDirWin32(call *Call, dir string) ([]DirEntry, error) {
	raw, err := s.enumDir(call, dir, LevelIAT)
	if err != nil {
		return nil, err
	}
	out := make([]DirEntry, 0, len(raw))
	for _, e := range raw {
		if Win32Visible(e.Path, e.Name) {
			out = append(out, e)
		}
	}
	return out, nil
}

// EnumDirNative lists a directory via the Native API (direct
// NtQueryDirectoryFile), skipping IAT and user-mode code hooks and Win32
// name restrictions. Tools like the paper's low-level utilities — or
// rootkit user-mode components — use this entry.
func (s *Stack) EnumDirNative(call *Call, dir string) ([]DirEntry, error) {
	return s.enumDir(call, dir, LevelNtdll)
}

// WalkTreeWin32 implements "dir /s /b": a recursive Win32 enumeration.
// Recursion happens through the same hooked chain, so a directory hidden
// at any level hides its whole subtree, and Win32 path-length limits
// prune descent just as they do for the real command.
func (s *Stack) WalkTreeWin32(call *Call, root string) ([]DirEntry, error) {
	var out []DirEntry
	var walk func(dir string) error
	walk = func(dir string) error {
		entries, err := s.EnumDirWin32(call, dir)
		if err != nil {
			return err
		}
		for _, e := range entries {
			out = append(out, e)
			if e.Dir && len(e.Path) <= MaxPath {
				if err := walk(e.Path); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	return out, nil
}

// --- boot sector -------------------------------------------------------------

// ReadBootSectorWin32 reads sector 0 of the system drive the way an
// inside-the-box tool would: by opening the physical drive through the
// hooked API chain. A bootkit's filter hook can substitute the pristine
// sector here; the raw device scan bypasses the chain and sees the
// infected truth.
func (s *Stack) ReadBootSectorWin32(call *Call) ([]byte, error) {
	if s.bases.BootRead == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoBase, APIBootRead)
	}
	if err := s.callFault(APIBootRead, call); err != nil {
		return nil, err
	}
	handler := s.bases.BootRead
	for _, h := range s.chainHooks(APIBootRead, LevelIAT, call) {
		if h.WrapBootRead != nil {
			handler = h.WrapBootRead(handler)
		}
	}
	out, err := handler(call)
	s.charge(call, 1)
	return out, err
}

// --- Registry ----------------------------------------------------------------

func (s *Stack) queryKey(call *Call, keyPath string, entry Level) (KeySnapshot, error) {
	if s.bases.RegQuery == nil {
		return KeySnapshot{}, fmt.Errorf("%w: %s", ErrNoBase, APIRegQuery)
	}
	if err := s.callFault(APIRegQuery, call); err != nil {
		return KeySnapshot{}, err
	}
	handler := s.bases.RegQuery
	for _, h := range s.chainHooks(APIRegQuery, entry, call) {
		if h.WrapRegQuery != nil {
			handler = h.WrapRegQuery(handler)
		}
	}
	out, err := handler(call, keyPath)
	s.charge(call, len(out.Subkeys)+len(out.Values))
	return out, err
}

// QueryKeyWin32 reads a key the way RegEdit and the Win32 Registry APIs
// do: through the full chain, with NUL-terminated string semantics —
// names containing embedded NULs, and names exceeding the Win32 editor
// limit, are invisible.
func (s *Stack) QueryKeyWin32(call *Call, keyPath string) (KeySnapshot, error) {
	raw, err := s.queryKey(call, keyPath, LevelIAT)
	if err != nil {
		return KeySnapshot{}, err
	}
	out := KeySnapshot{}
	for _, k := range raw.Subkeys {
		if Win32NameVisible(k) {
			out.Subkeys = append(out.Subkeys, k)
		}
	}
	for _, v := range raw.Values {
		if Win32NameVisible(v.Name) {
			out.Values = append(out.Values, v)
		}
	}
	return out, nil
}

// QueryKeyNative reads a key via the Native API: counted-string
// semantics, entering at the ntdll level.
func (s *Stack) QueryKeyNative(call *Call, keyPath string) (KeySnapshot, error) {
	return s.queryKey(call, keyPath, LevelNtdll)
}

// --- processes and modules ----------------------------------------------------

func (s *Stack) enumProcs(call *Call, entry Level) ([]ProcEntry, error) {
	if s.bases.ProcEnum == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoBase, APIProcEnum)
	}
	if err := s.callFault(APIProcEnum, call); err != nil {
		return nil, err
	}
	handler := s.bases.ProcEnum
	for _, h := range s.chainHooks(APIProcEnum, entry, call) {
		if h.WrapProcEnum != nil {
			handler = h.WrapProcEnum(handler)
		}
	}
	out, err := handler(call)
	s.charge(call, len(out))
	return out, err
}

// EnumProcessesWin32 lists processes as Task Manager / tlist do
// (Process32First→NtQuerySystemInformation through the full chain).
func (s *Stack) EnumProcessesWin32(call *Call) ([]ProcEntry, error) {
	return s.enumProcs(call, LevelIAT)
}

// EnumProcessesNative lists processes entering at ntdll.
func (s *Stack) EnumProcessesNative(call *Call) ([]ProcEntry, error) {
	return s.enumProcs(call, LevelNtdll)
}

// EnumModulesWin32 lists the modules of pid through the full chain.
// Entries whose pathname has been blanked in the PEB are invisible, as
// the calling chain keys on pathnames.
func (s *Stack) EnumModulesWin32(call *Call, pid uint64) ([]ModEntry, error) {
	if s.bases.ModEnum == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoBase, APIModEnum)
	}
	if err := s.callFault(APIModEnum, call); err != nil {
		return nil, err
	}
	handler := s.bases.ModEnum
	for _, h := range s.chainHooks(APIModEnum, LevelIAT, call) {
		if h.WrapModEnum != nil {
			handler = h.WrapModEnum(handler)
		}
	}
	raw, err := handler(call, pid)
	s.charge(call, len(raw))
	if err != nil {
		return nil, err
	}
	out := make([]ModEntry, 0, len(raw))
	for _, m := range raw {
		if m.Path != "" {
			out = append(out, m)
		}
	}
	return out, nil
}

// EnumDriversWin32 lists loaded drivers through the chain.
func (s *Stack) EnumDriversWin32(call *Call) ([]ModEntry, error) {
	if s.bases.DriverEnum == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoBase, APIDriverEnum)
	}
	if err := s.callFault(APIDriverEnum, call); err != nil {
		return nil, err
	}
	handler := s.bases.DriverEnum
	for _, h := range s.chainHooks(APIDriverEnum, LevelIAT, call) {
		if h.WrapDriverEnum != nil {
			handler = h.WrapDriverEnum(handler)
		}
	}
	out, err := handler(call)
	s.charge(call, len(out))
	return out, err
}
