package winapi

import (
	"strings"
	"testing"
)

func TestWin32NameVisibleTable(t *testing.T) {
	cases := []struct {
		name string
		want bool
	}{
		{"Updater", true},
		{"", true}, // the empty value name (a key's default value) is legal
		{strings.Repeat("a", 255), true},
		{strings.Repeat("a", 256), false},
		{"with\x00nul", false},
		{"\x00leading", false},
		{"trailing\x00", false},
	}
	for _, tc := range cases {
		if got := Win32NameVisible(tc.name); got != tc.want {
			t.Errorf("Win32NameVisible(%q) = %v, want %v", strings.ReplaceAll(tc.name, "\x00", `\0`), got, tc.want)
		}
	}
}

func TestWin32VisibleTable(t *testing.T) {
	cases := []struct {
		path string
		name string
		want bool
	}{
		{`C:\f.txt`, "f.txt", true},
		{`C:\dir\sub.folder`, "sub.folder", true},
		{`C:\f.`, "f.", false},
		{`C:\f `, "f ", false},
		{`C:\CON`, "CON", false},
		{`C:\con`, "con", false},
		{`C:\CON.txt`, "CON.txt", false},
		{`C:\console.txt`, "console.txt", true}, // only exact base matches
		{`C:\NUL`, "NUL", false},
		{`C:\COM1`, "COM1", false},
		{`C:\COM0`, "COM0", true}, // COM0 is not reserved
		{`C:\LPT9.doc`, "LPT9.doc", false},
		{`C:\a?b`, "a?b", false},
		{`C:\a*b`, "a*b", false},
		{`C:\a|b`, "a|b", false},
		{`C:\a<b`, "a<b", false},
		{`C:\tab\tb`, "ta\tb", false}, // control characters
		{`C:\nul\x00`, "nu\x00l", false},
		{`C:\` + strings.Repeat("d", 300), strings.Repeat("d", 300), false}, // MAX_PATH
		{`C:\ok`, "", false},                                                // empty component never enumerates
	}
	for _, tc := range cases {
		if got := Win32Visible(tc.path, tc.name); got != tc.want {
			t.Errorf("Win32Visible(%q, %q) = %v, want %v", tc.path, tc.name, got, tc.want)
		}
	}
}

func TestLevelStrings(t *testing.T) {
	for _, l := range []Level{LevelNone, LevelIAT, LevelUserCode, LevelNtdll, LevelSSDT, LevelFilter} {
		if l.String() == "unknown level" {
			t.Errorf("level %d has no name", l)
		}
	}
	if Level(42).String() != "unknown level" {
		t.Error("unexpected name for bogus level")
	}
}

func TestResourceChainsIndependent(t *testing.T) {
	// A file hook must never affect Registry or process queries.
	s := newTestStack(fakeFS{`C:`: {file(`C:`, "x")}}, nil)
	s.Install(NewFileHideHook("mal", LevelSSDT, "t", nil, func(*Call, DirEntry) bool { return true }))
	ks, err := s.QueryKeyWin32(testCall, `HKLM\X`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks.Subkeys) == 0 {
		t.Error("file hook bled into the Registry chain")
	}
	procs, err := s.EnumProcessesWin32(testCall)
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 3 {
		t.Error("file hook bled into the process chain")
	}
}
