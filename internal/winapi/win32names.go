package winapi

import "strings"

// MaxPath is the Win32 full-path limit (MAX_PATH). Entries whose full
// path exceeds it are unaddressable by Win32 callers, and "dir /s /b"
// cannot descend past it.
const MaxPath = 260

// win32Reserved is the set of device names Win32 refuses to open as
// files [MSDN "Naming a File"]. A reserved base name with any extension
// is also reserved (e.g. "NUL.txt").
var win32Reserved = map[string]bool{
	"CON": true, "PRN": true, "AUX": true, "NUL": true,
	"COM1": true, "COM2": true, "COM3": true, "COM4": true, "COM5": true,
	"COM6": true, "COM7": true, "COM8": true, "COM9": true,
	"LPT1": true, "LPT2": true, "LPT3": true, "LPT4": true, "LPT5": true,
	"LPT6": true, "LPT7": true, "LPT8": true, "LPT9": true,
}

// Win32NameVisible reports whether a single name is representable under
// Win32 string semantics: NUL-terminated, and within editor length
// limits. Registry entries violating either rule are invisible to
// RegEdit and the Win32 Registry APIs (paper §3).
func Win32NameVisible(name string) bool {
	if strings.ContainsRune(name, 0) {
		return false
	}
	return len(name) <= 255
}

// Win32Visible reports whether a directory entry is addressable by the
// Win32 file APIs. NTFS happily stores names that violate these rules
// when created through low-level APIs; such files are effectively hidden
// from every Win32 program (paper §2: trailing dots or spaces, reserved
// device names, over-long full pathnames, special characters).
func Win32Visible(fullPath, name string) bool {
	if name == "" {
		return false
	}
	if strings.HasSuffix(name, ".") || strings.HasSuffix(name, " ") {
		return false
	}
	if strings.ContainsRune(name, 0) {
		return false
	}
	for _, r := range name {
		switch r {
		case '<', '>', ':', '"', '/', '|', '?', '*':
			return false
		}
		if r < 0x20 {
			return false
		}
	}
	base := name
	if i := strings.IndexByte(base, '.'); i >= 0 {
		base = base[:i]
	}
	if win32Reserved[strings.ToUpper(strings.TrimSpace(base))] {
		return false
	}
	return len(fullPath) <= MaxPath
}
