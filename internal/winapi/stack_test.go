package winapi

import (
	"strings"
	"testing"
	"time"

	"ghostbuster/internal/vtime"
)

// fakeFS is a trivial base: a map from directory to entries.
type fakeFS map[string][]DirEntry

func (f fakeFS) handler(call *Call, dir string) ([]DirEntry, error) {
	return append([]DirEntry(nil), f[strings.ToUpper(dir)]...), nil
}

func file(dir, name string) DirEntry {
	p := dir + `\` + name
	if strings.HasSuffix(dir, `\`) {
		p = dir + name
	}
	return DirEntry{Name: name, Path: p}
}

func dirEnt(dir, name string) DirEntry {
	e := file(dir, name)
	e.Dir = true
	return e
}

func newTestStack(fs fakeFS, clock *vtime.Clock) *Stack {
	return NewStack(Bases{
		FileEnum: fs.handler,
		RegQuery: func(call *Call, keyPath string) (KeySnapshot, error) {
			return KeySnapshot{
				Subkeys: []string{"Normal", "With\x00Null", strings.Repeat("L", 300)},
				Values:  []KeyValue{{Name: "ok"}, {Name: "bad\x00name"}},
			}, nil
		},
		ProcEnum: func(call *Call) ([]ProcEntry, error) {
			return []ProcEntry{{Pid: 4, Name: "System"}, {Pid: 100, Name: "evil.exe"}, {Pid: 104, Name: "taskmgr.exe"}}, nil
		},
		ModEnum: func(call *Call, pid uint64) ([]ModEntry, error) {
			return []ModEntry{{Path: `C:\a.exe`}, {Path: ""}, {Path: `C:\b.dll`}}, nil
		},
		DriverEnum: func(call *Call) ([]ModEntry, error) {
			return []ModEntry{{Path: `C:\drv.sys`}}, nil
		},
	}, clock, DefaultCosts())
}

var testCall = &Call{Proc: Proc{Pid: 200, Name: "scanner.exe"}}

func namesOf(entries []DirEntry) []string {
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Name
	}
	return out
}

func TestCleanChainReturnsBase(t *testing.T) {
	fs := fakeFS{`C:`: {file(`C:`, "a.txt"), file(`C:`, "b.txt")}}
	s := newTestStack(fs, nil)
	got, err := s.EnumDirWin32(testCall, `C:`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("entries = %v", namesOf(got))
	}
}

func TestHideHookFiltersAtEveryLevel(t *testing.T) {
	for _, level := range []Level{LevelIAT, LevelUserCode, LevelNtdll, LevelSSDT, LevelFilter} {
		fs := fakeFS{`C:`: {file(`C:`, "visible.txt"), file(`C:`, "hxdef100.exe")}}
		s := newTestStack(fs, nil)
		s.Install(NewFileHideHook("hxdef", level, "test", nil, func(call *Call, e DirEntry) bool {
			return strings.HasPrefix(e.Name, "hxdef")
		}))
		got, err := s.EnumDirWin32(testCall, `C:`)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0].Name != "visible.txt" {
			t.Errorf("level %v: entries = %v", level, namesOf(got))
		}
	}
}

func TestNativeEntrySkipsUserModeHooks(t *testing.T) {
	fs := fakeFS{`C:`: {file(`C:`, "secret.txt")}}
	s := newTestStack(fs, nil)
	// IAT-level and user-code-level hooks (Urbin/Vanquish style) do not
	// intercept a caller that enters at ntdll directly.
	s.Install(NewFileHideHook("urbin", LevelIAT, "IAT", nil, func(*Call, DirEntry) bool { return true }))
	s.Install(NewFileHideHook("vanquish", LevelUserCode, "inline", nil, func(*Call, DirEntry) bool { return true }))
	win32, err := s.EnumDirWin32(testCall, `C:`)
	if err != nil {
		t.Fatal(err)
	}
	if len(win32) != 0 {
		t.Errorf("Win32 view should be empty, got %v", namesOf(win32))
	}
	native, err := s.EnumDirNative(testCall, `C:`)
	if err != nil {
		t.Fatal(err)
	}
	if len(native) != 1 {
		t.Errorf("native view should bypass user-mode hooks, got %v", namesOf(native))
	}
	// But an SSDT hook catches even native callers.
	s.Install(NewFileHideHook("probot", LevelSSDT, "SSDT", nil, func(*Call, DirEntry) bool { return true }))
	native, err = s.EnumDirNative(testCall, `C:`)
	if err != nil {
		t.Fatal(err)
	}
	if len(native) != 0 {
		t.Errorf("SSDT hook must intercept native callers, got %v", namesOf(native))
	}
}

func TestAppliesToScopesHook(t *testing.T) {
	fs := fakeFS{`C:`: {file(`C:`, "target.txt")}}
	s := newTestStack(fs, nil)
	// Targeted hiding: hide only from Task Manager (paper §5).
	s.Install(NewFileHideHook("targeted", LevelFilter, "scoped filter driver",
		func(p Proc) bool { return strings.EqualFold(p.Name, "taskmgr.exe") },
		func(*Call, DirEntry) bool { return true }))
	fromScanner, err := s.EnumDirWin32(testCall, `C:`)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromScanner) != 1 {
		t.Errorf("scanner should see the file, got %v", namesOf(fromScanner))
	}
	fromTaskmgr, err := s.EnumDirWin32(&Call{Proc: Proc{Pid: 104, Name: "taskmgr.exe"}}, `C:`)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromTaskmgr) != 0 {
		t.Errorf("taskmgr should see nothing, got %v", namesOf(fromTaskmgr))
	}
}

func TestUninstallRemovesHooks(t *testing.T) {
	fs := fakeFS{`C:`: {file(`C:`, "f.txt")}}
	s := newTestStack(fs, nil)
	s.Install(NewFileHideHook("mal", LevelSSDT, "t", nil, func(*Call, DirEntry) bool { return true }))
	s.Install(NewProcHideHook("mal", LevelNtdll, "t", nil, func(*Call, ProcEntry) bool { return true }))
	if n := s.Uninstall("mal"); n != 2 {
		t.Errorf("Uninstall removed %d, want 2", n)
	}
	got, err := s.EnumDirWin32(testCall, `C:`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("after uninstall entries = %v", namesOf(got))
	}
	if len(s.Hooks()) != 0 {
		t.Errorf("Hooks() = %v", s.Hooks())
	}
}

func TestWin32NameRestrictionsHideEntries(t *testing.T) {
	fs := fakeFS{`C:`: {
		file(`C:`, "normal.txt"),
		file(`C:`, "trailingdot."),
		file(`C:`, "trailingspace "),
		file(`C:`, "NUL.txt"),
		file(`C:`, "COM1"),
		file(`C:`, "with\x00nul"),
		file(`C:`, "que?stion"),
	}}
	s := newTestStack(fs, nil)
	win32, err := s.EnumDirWin32(testCall, `C:`)
	if err != nil {
		t.Fatal(err)
	}
	if len(win32) != 1 || win32[0].Name != "normal.txt" {
		t.Errorf("Win32 view = %v", namesOf(win32))
	}
	native, err := s.EnumDirNative(testCall, `C:`)
	if err != nil {
		t.Fatal(err)
	}
	if len(native) != 7 {
		t.Errorf("native view = %v", namesOf(native))
	}
}

func TestWalkTreeRecursesAndPrunes(t *testing.T) {
	longName := strings.Repeat("d", 250)
	fs := fakeFS{
		`C:`:                              {dirEnt(`C:`, "sub"), file(`C:`, "top.txt"), dirEnt(`C:`, longName)},
		`C:\SUB`:                          {file(`C:\sub`, "inner.txt"), dirEnt(`C:\sub`, "deep")},
		`C:\SUB\DEEP`:                     {file(`C:\sub\deep`, "bottom.txt")},
		strings.ToUpper(`C:\` + longName): {file(`C:\`+longName, "unreachable.txt")},
	}
	s := newTestStack(fs, nil)
	got, err := s.WalkTreeWin32(testCall, `C:`)
	if err != nil {
		t.Fatal(err)
	}
	names := namesOf(got)
	want := map[string]bool{"sub": true, "top.txt": true, longName: true, "inner.txt": true, "deep": true, "bottom.txt": true}
	if len(got) != len(want) {
		t.Errorf("walk = %v", names)
	}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected entry %q (long-path subtree should be pruned)", n)
		}
	}
}

func TestHiddenDirectoryHidesSubtree(t *testing.T) {
	fs := fakeFS{
		`C:`:       {dirEnt(`C:`, "hxdef"), file(`C:`, "ok.txt")},
		`C:\HXDEF`: {file(`C:\hxdef`, "hxdef100.exe")},
	}
	s := newTestStack(fs, nil)
	s.Install(NewFileHideHook("hxdef", LevelNtdll, "inline", nil, func(call *Call, e DirEntry) bool {
		return strings.HasPrefix(strings.ToLower(e.Name), "hxdef")
	}))
	got, err := s.WalkTreeWin32(testCall, `C:`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "ok.txt" {
		t.Errorf("walk through hidden dir = %v", namesOf(got))
	}
}

func TestRegistryWin32SemanticsHideNulAndLongNames(t *testing.T) {
	s := newTestStack(fakeFS{}, nil)
	win32, err := s.QueryKeyWin32(testCall, `HKLM\SOFTWARE\Test`)
	if err != nil {
		t.Fatal(err)
	}
	if len(win32.Subkeys) != 1 || win32.Subkeys[0] != "Normal" {
		t.Errorf("Win32 subkeys = %q", win32.Subkeys)
	}
	if len(win32.Values) != 1 || win32.Values[0].Name != "ok" {
		t.Errorf("Win32 values = %v", win32.Values)
	}
	native, err := s.QueryKeyNative(testCall, `HKLM\SOFTWARE\Test`)
	if err != nil {
		t.Fatal(err)
	}
	if len(native.Subkeys) != 3 || len(native.Values) != 2 {
		t.Errorf("native view = %+v", native)
	}
}

func TestRegHideHookFiltersValues(t *testing.T) {
	s := newTestStack(fakeFS{}, nil)
	s.Install(NewRegHideHook("urbin", LevelUserCode, "IAT RegEnumValue", nil,
		nil,
		func(call *Call, keyPath, name string) bool { return name == "ok" }))
	got, err := s.QueryKeyWin32(testCall, `HKLM\X`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Values) != 0 {
		t.Errorf("values = %v", got.Values)
	}
	if len(got.Subkeys) != 1 {
		t.Errorf("subkeys should be untouched: %q", got.Subkeys)
	}
}

func TestProcAndModChains(t *testing.T) {
	s := newTestStack(fakeFS{}, nil)
	s.Install(NewProcHideHook("berbew", LevelNtdll, "jmp", nil, func(call *Call, p ProcEntry) bool {
		return p.Name == "evil.exe"
	}))
	procs, err := s.EnumProcessesWin32(testCall)
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 2 {
		t.Errorf("procs = %+v", procs)
	}
	mods, err := s.EnumModulesWin32(testCall, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The blank-path PEB entry must not surface.
	if len(mods) != 2 {
		t.Errorf("mods = %+v", mods)
	}
	drv, err := s.EnumDriversWin32(testCall)
	if err != nil {
		t.Fatal(err)
	}
	if len(drv) != 1 {
		t.Errorf("drivers = %+v", drv)
	}
}

func TestHookOrderingOutermostIsIAT(t *testing.T) {
	// An SSDT-level hook rewrites names to upper case; an IAT-level hook
	// then drops anything upper-cased. If ordering were wrong the IAT
	// hook would see lower-case names and drop nothing.
	fs := fakeFS{`C:`: {file(`C:`, "mixed.txt")}}
	s := newTestStack(fs, nil)
	s.Install(&Hook{
		Owner: "rewriter", API: APIFileEnum, Level: LevelSSDT, Technique: "rewrite",
		WrapFileEnum: func(next FileEnumHandler) FileEnumHandler {
			return func(call *Call, dir string) ([]DirEntry, error) {
				entries, err := next(call, dir)
				if err != nil {
					return nil, err
				}
				for i := range entries {
					entries[i].Name = strings.ToUpper(entries[i].Name)
				}
				return entries, nil
			}
		},
	})
	s.Install(NewFileHideHook("dropper", LevelIAT, "drop upper", nil, func(call *Call, e DirEntry) bool {
		return e.Name == strings.ToUpper(e.Name)
	}))
	got, err := s.EnumDirWin32(testCall, `C:`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("IAT hook should run after (outside) SSDT hook; got %v", namesOf(got))
	}
}

func TestClockChargesPerCallAndEntry(t *testing.T) {
	var clock vtime.Clock
	fs := fakeFS{`C:`: {file(`C:`, "a"), file(`C:`, "b"), file(`C:`, "c")}}
	s := newTestStack(fs, &clock)
	if _, err := s.EnumDirWin32(testCall, `C:`); err != nil {
		t.Fatal(err)
	}
	want := 50*time.Microsecond + 3*2*time.Microsecond
	if clock.Now() != want {
		t.Errorf("clock = %v, want %v", clock.Now(), want)
	}
}

func TestNoBaseErrors(t *testing.T) {
	s := NewStack(Bases{}, nil, DefaultCosts())
	if _, err := s.EnumDirWin32(testCall, `C:`); err == nil {
		t.Error("missing base should error")
	}
	if _, err := s.QueryKeyWin32(testCall, `HKLM`); err == nil {
		t.Error("missing reg base should error")
	}
	if _, err := s.EnumProcessesWin32(testCall); err == nil {
		t.Error("missing proc base should error")
	}
	if _, err := s.EnumModulesWin32(testCall, 4); err == nil {
		t.Error("missing mod base should error")
	}
	if _, err := s.EnumDriversWin32(testCall); err == nil {
		t.Error("missing driver base should error")
	}
}
