package winapi

// This file provides the hook constructors ghostware implementations
// use. Almost all real resource hiding is "interception and filtering":
// call the next layer, then remove the to-be-hidden entries from the
// returned result set. The constructors capture that pattern; bespoke
// hooks (e.g. result *rewriting*) can still be built from raw Hook
// values.

// NewFileHideHook builds a file-enumeration filter at the given level
// that drops entries for which hide returns true.
func NewFileHideHook(owner string, level Level, technique string, appliesTo func(Proc) bool, hide func(call *Call, e DirEntry) bool) *Hook {
	return &Hook{
		Owner: owner, API: APIFileEnum, Level: level, Technique: technique, AppliesTo: appliesTo,
		WrapFileEnum: func(next FileEnumHandler) FileEnumHandler {
			return func(call *Call, dir string) ([]DirEntry, error) {
				entries, err := next(call, dir)
				if err != nil {
					return nil, err
				}
				out := entries[:0:0]
				for _, e := range entries {
					if !hide(call, e) {
						out = append(out, e)
					}
				}
				return out, nil
			}
		},
	}
}

// NewRegHideHook builds a Registry-query filter that drops subkeys and
// values for which the respective predicate returns true. Either
// predicate may be nil.
func NewRegHideHook(owner string, level Level, technique string, appliesTo func(Proc) bool,
	hideSubkey func(call *Call, keyPath, subkey string) bool,
	hideValue func(call *Call, keyPath, valueName string) bool) *Hook {
	return &Hook{
		Owner: owner, API: APIRegQuery, Level: level, Technique: technique, AppliesTo: appliesTo,
		WrapRegQuery: func(next RegQueryHandler) RegQueryHandler {
			return func(call *Call, keyPath string) (KeySnapshot, error) {
				snap, err := next(call, keyPath)
				if err != nil {
					return KeySnapshot{}, err
				}
				out := KeySnapshot{}
				for _, k := range snap.Subkeys {
					if hideSubkey != nil && hideSubkey(call, keyPath, k) {
						continue
					}
					out.Subkeys = append(out.Subkeys, k)
				}
				for _, v := range snap.Values {
					if hideValue != nil && hideValue(call, keyPath, v.Name) {
						continue
					}
					out.Values = append(out.Values, v)
				}
				return out, nil
			}
		},
	}
}

// NewProcHideHook builds a process-enumeration filter.
func NewProcHideHook(owner string, level Level, technique string, appliesTo func(Proc) bool, hide func(call *Call, p ProcEntry) bool) *Hook {
	return &Hook{
		Owner: owner, API: APIProcEnum, Level: level, Technique: technique, AppliesTo: appliesTo,
		WrapProcEnum: func(next ProcEnumHandler) ProcEnumHandler {
			return func(call *Call) ([]ProcEntry, error) {
				procs, err := next(call)
				if err != nil {
					return nil, err
				}
				out := procs[:0:0]
				for _, p := range procs {
					if !hide(call, p) {
						out = append(out, p)
					}
				}
				return out, nil
			}
		},
	}
}

// NewModHideHook builds a module-enumeration filter.
func NewModHideHook(owner string, level Level, technique string, appliesTo func(Proc) bool, hide func(call *Call, m ModEntry) bool) *Hook {
	return &Hook{
		Owner: owner, API: APIModEnum, Level: level, Technique: technique, AppliesTo: appliesTo,
		WrapModEnum: func(next ModEnumHandler) ModEnumHandler {
			return func(call *Call, pid uint64) ([]ModEntry, error) {
				mods, err := next(call, pid)
				if err != nil {
					return nil, err
				}
				out := mods[:0:0]
				for _, m := range mods {
					if !hide(call, m) {
						out = append(out, m)
					}
				}
				return out, nil
			}
		},
	}
}

// NewDriverHideHook builds a driver-enumeration filter.
func NewDriverHideHook(owner string, level Level, technique string, appliesTo func(Proc) bool, hide func(call *Call, m ModEntry) bool) *Hook {
	return &Hook{
		Owner: owner, API: APIDriverEnum, Level: level, Technique: technique, AppliesTo: appliesTo,
		WrapDriverEnum: func(next DriverEnumHandler) DriverEnumHandler {
			return func(call *Call) ([]ModEntry, error) {
				mods, err := next(call)
				if err != nil {
					return nil, err
				}
				out := mods[:0:0]
				for _, m := range mods {
					if !hide(call, m) {
						out = append(out, m)
					}
				}
				return out, nil
			}
		},
	}
}

// NewBootSanitizeHook builds a boot-read hook that substitutes its own
// sector bytes for the real ones — the bootkit lie: inside-the-box reads
// of sector 0 see the pristine pre-infection image while the device
// holds the patched one.
func NewBootSanitizeHook(owner string, level Level, technique string, appliesTo func(Proc) bool, pristine []byte) *Hook {
	return &Hook{
		Owner: owner, API: APIBootRead, Level: level, Technique: technique, AppliesTo: appliesTo,
		WrapBootRead: func(next BootReadHandler) BootReadHandler {
			return func(call *Call) ([]byte, error) {
				if _, err := next(call); err != nil {
					return nil, err
				}
				return append([]byte(nil), pristine...), nil
			}
		},
	}
}

// NewFileEnumWatchHook builds an observe-only file-enumeration hook that
// calls observe on every enumerated directory before passing the query
// through unmodified. Evasive ghostware uses it to fingerprint
// scan-shaped API traffic (a full-volume walk always starts at the
// drive root) and change its hiding behaviour mid-sweep.
func NewFileEnumWatchHook(owner string, level Level, technique string, observe func(call *Call, dir string)) *Hook {
	return &Hook{
		Owner: owner, API: APIFileEnum, Level: level, Technique: technique,
		WrapFileEnum: func(next FileEnumHandler) FileEnumHandler {
			return func(call *Call, dir string) ([]DirEntry, error) {
				observe(call, dir)
				return next(call, dir)
			}
		},
	}
}

// NewPassthroughFileHook builds a hook that observes but does not
// filter. Legitimate software (in-memory patchers, fault-tolerance
// wrappers, AV real-time shims) installs hooks like this; they are the
// false positives of hook-detection-based scanners (paper §1).
func NewPassthroughFileHook(owner string, level Level, technique string) *Hook {
	return &Hook{
		Owner: owner, API: APIFileEnum, Level: level, Technique: technique,
		WrapFileEnum: func(next FileEnumHandler) FileEnumHandler {
			return func(call *Call, dir string) ([]DirEntry, error) {
				return next(call, dir)
			}
		},
	}
}
