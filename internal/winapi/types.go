// Package winapi models the layered Windows API call paths that
// ghostware intercepts. A query from a user-mode program traverses, in
// order:
//
//	IAT entry → user-mode DLL code (kernel32/advapi32) → ntdll code →
//	syscall dispatch (SSDT) → kernel filter (FS filter driver stack or
//	Registry callbacks) → base implementation (FS driver / configuration
//	manager / kernel structures)
//
// Each traversal point is a hookable slot. Ghostware installs hooks at
// the level matching its real-world technique (Figures 2 and 5 of the
// paper); GhostBuster's high-level scans enter at the top of the chain
// and therefore observe "the lie", while its low-level scans bypass the
// chain entirely and observe "the truth".
package winapi

import "ghostbuster/internal/vtime"

// Level identifies where in the call path a hook sits. Lower values are
// closer to the calling program (outermost).
type Level int

// LevelNone marks techniques that install no hook at all: direct data
// manipulation (DKOM, PEB blanking) or pure name tricks. Hook-detection
// scanners are structurally blind to these.
const LevelNone Level = 0

// Hook levels, outermost first.
const (
	LevelIAT      Level = iota + 1 // per-process Import Address Table entry
	LevelUserCode                  // inline detour in kernel32/advapi32 in-memory code
	LevelNtdll                     // inline detour in ntdll in-memory code
	LevelSSDT                      // Service Dispatch Table entry
	LevelFilter                    // FS filter driver / Registry callback
)

// String names the level the way the paper's Figure 2 does.
func (l Level) String() string {
	switch l {
	case LevelNone:
		return "direct data manipulation (no hook)"
	case LevelIAT:
		return "IAT hook"
	case LevelUserCode:
		return "inline user-mode API detour"
	case LevelNtdll:
		return "inline ntdll detour"
	case LevelSSDT:
		return "Service Dispatch Table hook"
	case LevelFilter:
		return "filter driver / kernel callback"
	default:
		return "unknown level"
	}
}

// API identifies a hookable query chain.
type API string

// The query chains GhostBuster exercises.
const (
	APIFileEnum   API = "FileEnum"   // FindFirst(Next)File → NtQueryDirectoryFile
	APIRegQuery   API = "RegQuery"   // RegEnum{Key,Value} → NtEnumerateKey
	APIProcEnum   API = "ProcEnum"   // Process32First → NtQuerySystemInformation
	APIModEnum    API = "ModEnum"    // Module32First → NtQueryInformationProcess
	APIDriverEnum API = "DriverEnum" // EnumDeviceDrivers
	APIBootRead   API = "BootRead"   // ReadFile on \\.\PhysicalDrive0, sector 0
)

// Proc is the identity of the process issuing a query; hooks use it to
// scope their behaviour (e.g. hide only from Task Manager, or from
// everything except the ghostware's own process).
type Proc struct {
	Pid  uint64
	Name string
}

// Call carries per-query context down the chain, playing the role of the
// IRP: filter drivers "examin[e] the IRP ... to determine the
// originating process".
//
// Clock, when non-nil, receives the virtual-time charges for the call
// instead of the stack's machine clock. Parallel scan lanes set it so
// each lane accumulates only its own API traffic.
type Call struct {
	Proc  Proc
	API   API
	Clock *vtime.Clock
}

// DirEntry is one file-enumeration result.
type DirEntry struct {
	Name     string
	Path     string // full path including drive prefix
	Size     uint64
	Dir      bool
	Created  uint64
	Modified uint64
	Attrs    uint32
}

// KeySnapshot is one Registry-key query result: the key's subkey names
// and its values.
type KeySnapshot struct {
	Subkeys []string
	Values  []KeyValue
}

// KeyValue is one Registry value as returned by a query.
type KeyValue struct {
	Name string
	Type uint32
	Data []byte
}

// ProcEntry is one process-enumeration result.
type ProcEntry struct {
	Pid       uint64
	Name      string
	Path      string
	ParentPid uint64
}

// ModEntry is one module- or driver-enumeration result.
type ModEntry struct {
	Base uint64
	Size uint64
	Path string
}

// Handler signatures for each chain.
type (
	// FileEnumHandler lists one directory (non-recursive).
	FileEnumHandler func(call *Call, dir string) ([]DirEntry, error)
	// RegQueryHandler reads one key's subkeys and values.
	RegQueryHandler func(call *Call, keyPath string) (KeySnapshot, error)
	// ProcEnumHandler lists processes.
	ProcEnumHandler func(call *Call) ([]ProcEntry, error)
	// ModEnumHandler lists the modules of the target pid.
	ModEnumHandler func(call *Call, pid uint64) ([]ModEntry, error)
	// DriverEnumHandler lists loaded drivers.
	DriverEnumHandler func(call *Call) ([]ModEntry, error)
	// BootReadHandler reads the volume's boot sector as a user-mode
	// program opening the physical drive would see it. Bootkits hook this
	// read to return the pristine pre-infection sector.
	BootReadHandler func(call *Call) ([]byte, error)
)

// Bases are the bottom-of-chain implementations, wired up by the machine
// package: the filesystem driver, the configuration manager, and the
// kernel's structure readers.
type Bases struct {
	FileEnum   FileEnumHandler
	RegQuery   RegQueryHandler
	ProcEnum   ProcEnumHandler
	ModEnum    ModEnumHandler
	DriverEnum DriverEnumHandler
	BootRead   BootReadHandler
}

// Hook is one installed interception. Exactly one Wrap* field should be
// set, matching API. AppliesTo lets a hook scope itself to particular
// calling processes: per-process code patching (a rootkit that injects
// into every process evaluates to true for all), targeted hiding (true
// only for Task Manager), or GhostBuster-evasion (false for
// ghostbuster.exe). A nil AppliesTo applies to every caller.
type Hook struct {
	Owner     string // ghostware (or legitimate software) name
	API       API
	Level     Level
	Technique string // human-readable technique label for the taxonomy
	AppliesTo func(p Proc) bool

	WrapFileEnum   func(next FileEnumHandler) FileEnumHandler
	WrapRegQuery   func(next RegQueryHandler) RegQueryHandler
	WrapProcEnum   func(next ProcEnumHandler) ProcEnumHandler
	WrapModEnum    func(next ModEnumHandler) ModEnumHandler
	WrapDriverEnum func(next DriverEnumHandler) DriverEnumHandler
	WrapBootRead   func(next BootReadHandler) BootReadHandler

	installSeq int
}

// HookInfo is the introspectable description of an installed hook, used
// by the hook-detection baseline (the paper's "first approach") and by
// the Figure 2 / Figure 5 taxonomy reports.
type HookInfo struct {
	Owner     string
	API       API
	Level     Level
	Technique string
}
