package hive

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewHiveHasRoot(t *testing.T) {
	h := New("SYSTEM")
	if h.Name() != "SYSTEM" {
		t.Errorf("Name = %q", h.Name())
	}
	keys, err := h.EnumKeys("")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 0 {
		t.Errorf("fresh hive has %d subkeys", len(keys))
	}
}

func TestCreateAndEnumKeys(t *testing.T) {
	h := New("SOFTWARE")
	paths := []string{
		`Microsoft\Windows\CurrentVersion\Run`,
		`Microsoft\Windows\CurrentVersion\Explorer`,
		`Vendor\App`,
	}
	for _, p := range paths {
		if err := h.CreateKey(p); err != nil {
			t.Fatalf("CreateKey(%s): %v", p, err)
		}
	}
	top, err := h.EnumKeys("")
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 || top[0] != "Microsoft" || top[1] != "Vendor" {
		t.Errorf("top keys = %v", top)
	}
	cv, err := h.EnumKeys(`Microsoft\Windows\CurrentVersion`)
	if err != nil {
		t.Fatal(err)
	}
	if len(cv) != 2 {
		t.Errorf("CurrentVersion subkeys = %v", cv)
	}
	if !h.KeyExists(`MICROSOFT\windows\CURRENTVERSION\run`) {
		t.Error("key lookup should be case-insensitive")
	}
}

func TestCreateKeyIdempotent(t *testing.T) {
	h := New("X")
	if err := h.CreateKey(`a\b`); err != nil {
		t.Fatal(err)
	}
	if err := h.CreateKey(`a\b`); err != nil {
		t.Fatalf("re-creating an existing key should succeed: %v", err)
	}
	keys, err := h.EnumKeys("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 {
		t.Errorf("duplicate create made %d keys", len(keys))
	}
}

func TestSetGetValueRoundTrip(t *testing.T) {
	h := New("SOFTWARE")
	if err := h.CreateKey(`Run`); err != nil {
		t.Fatal(err)
	}
	cases := []Value{
		StringValue("Updater", `C:\Program Files\updater.exe`),
		DwordValue("Enabled", 1),
		{Name: "Blob", Type: RegBinary, Data: bytes.Repeat([]byte{0xAB}, 300)},
		{Name: "Tiny", Type: RegBinary, Data: []byte{1, 2, 3}}, // inline
		{Name: "Empty", Type: RegBinary, Data: nil},
	}
	for _, v := range cases {
		if err := h.SetValue("Run", v); err != nil {
			t.Fatalf("SetValue(%s): %v", v.Name, err)
		}
	}
	for _, want := range cases {
		got, err := h.GetValue("Run", want.Name)
		if err != nil {
			t.Fatalf("GetValue(%s): %v", want.Name, err)
		}
		if got.Type != want.Type || !bytes.Equal(got.Data, want.Data) {
			t.Errorf("value %s round trip: got type %d data %v", want.Name, got.Type, got.Data)
		}
	}
	if v, _ := h.GetValue("Run", "Updater"); v.String() != `C:\Program Files\updater.exe` {
		t.Errorf("String() = %q", v.String())
	}
	if v, _ := h.GetValue("Run", "Enabled"); v.Dword() != 1 {
		t.Errorf("Dword() = %d", v.Dword())
	}
}

func TestSetValueReplaces(t *testing.T) {
	h := New("S")
	if err := h.CreateKey("k"); err != nil {
		t.Fatal(err)
	}
	if err := h.SetString("k", "v", "first"); err != nil {
		t.Fatal(err)
	}
	if err := h.SetString("k", "V", "second"); err != nil {
		t.Fatal(err)
	}
	vals, err := h.EnumValues("k")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 {
		t.Fatalf("replace produced %d values", len(vals))
	}
	if vals[0].String() != "second" {
		t.Errorf("value = %q", vals[0].String())
	}
}

func TestDeleteValue(t *testing.T) {
	h := New("S")
	if err := h.CreateKey("k"); err != nil {
		t.Fatal(err)
	}
	if err := h.SetString("k", "a", "1"); err != nil {
		t.Fatal(err)
	}
	if err := h.SetString("k", "b", "2"); err != nil {
		t.Fatal(err)
	}
	if err := h.DeleteValue("k", "A"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.GetValue("k", "a"); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleted value lookup = %v", err)
	}
	vals, _ := h.EnumValues("k")
	if len(vals) != 1 || vals[0].Name != "b" {
		t.Errorf("remaining values = %v", vals)
	}
	if err := h.DeleteValue("k", "nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleting missing value = %v", err)
	}
}

func TestDeleteKeyAndTree(t *testing.T) {
	h := New("S")
	if err := h.CreateKey(`svc\drv\params`); err != nil {
		t.Fatal(err)
	}
	if err := h.SetString(`svc\drv`, "ImagePath", "x.sys"); err != nil {
		t.Fatal(err)
	}
	if err := h.DeleteKey("svc"); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("DeleteKey on non-empty = %v", err)
	}
	if err := h.DeleteKeyTree("svc"); err != nil {
		t.Fatal(err)
	}
	if h.KeyExists("svc") {
		t.Error("svc should be gone")
	}
	if err := h.DeleteKey(""); err == nil {
		t.Error("deleting root should fail")
	}
}

func TestOpenRoundTrip(t *testing.T) {
	h := New("SYSTEM")
	if err := h.CreateKey(`CurrentControlSet\Services\Tcpip`); err != nil {
		t.Fatal(err)
	}
	if err := h.SetString(`CurrentControlSet\Services\Tcpip`, "ImagePath", `drivers\tcpip.sys`); err != nil {
		t.Fatal(err)
	}
	img := h.Snapshot()
	h2, err := Open(img)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Name() != "SYSTEM" {
		t.Errorf("reopened name = %q", h2.Name())
	}
	v, err := h2.GetValue(`CurrentControlSet\Services\Tcpip`, "ImagePath")
	if err != nil || v.String() != `drivers\tcpip.sys` {
		t.Errorf("reopened value = %q, err %v", v.String(), err)
	}
	// Mutating the reopened hive must work (allocator over parsed image).
	if err := h2.CreateKey(`CurrentControlSet\Services\NewSvc`); err != nil {
		t.Errorf("create on reopened hive: %v", err)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	if _, err := Open([]byte("not a hive")); err == nil {
		t.Error("garbage should not open")
	}
	if _, err := Open(nil); err == nil {
		t.Error("nil should not open")
	}
	h := New("X")
	img := h.Snapshot()
	img[hdrSeq1Off]++ // torn write
	if _, err := Open(img); err == nil {
		t.Error("mismatched sequence numbers should be rejected")
	}
}

func TestEmbeddedNULNames(t *testing.T) {
	// The Native-API hiding trick: names with embedded NULs are legal in
	// the hive's counted-string world.
	h := New("S")
	if err := h.CreateKey("Run"); err != nil {
		t.Fatal(err)
	}
	hidden := "evil\x00visible-part-never-seen"
	if err := h.SetString("Run", hidden, "malware.exe"); err != nil {
		t.Fatal(err)
	}
	v, err := h.GetValue("Run", hidden)
	if err != nil {
		t.Fatalf("counted-string lookup failed: %v", err)
	}
	if v.String() != "malware.exe" {
		t.Errorf("data = %q", v.String())
	}
	// A lookup by the truncated name must NOT match: they are different
	// counted strings.
	if _, err := h.GetValue("Run", "evil"); !errors.Is(err, ErrNotFound) {
		t.Errorf("truncated name lookup = %v, want ErrNotFound", err)
	}
	// The raw parser sees the full counted name.
	raw, _, err := Parse(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, k := range raw {
		for _, rv := range k.Values {
			if rv.Name == hidden {
				found = true
			}
		}
	}
	if !found {
		t.Error("raw parse should surface the NUL-embedded value name")
	}
}

func TestParseSeesAllKeysAndValues(t *testing.T) {
	h := New("SOFTWARE")
	want := map[string][]string{
		`Microsoft\Windows\CurrentVersion\Run`:        {"Updater", "Sync"},
		`Microsoft\Windows NT\CurrentVersion\Windows`: {"AppInit_DLLs"},
		`Classes\CLSID`: nil,
		`Microsoft\Windows\CurrentVersion\Explorer\BHO`: {"WebHelper"},
	}
	for k, vals := range want {
		if err := h.CreateKey(k); err != nil {
			t.Fatal(err)
		}
		for _, v := range vals {
			if err := h.SetString(k, v, "data-"+v); err != nil {
				t.Fatal(err)
			}
		}
	}
	raw, stats, err := Parse(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if stats.KeysParsed == 0 || stats.BytesRead == 0 {
		t.Error("stats not populated")
	}
	got := map[string][]string{}
	for _, k := range raw {
		var names []string
		for _, v := range k.Values {
			names = append(names, v.Name)
		}
		got[strings.ToUpper(k.Path)] = names
	}
	for k, vals := range want {
		gv, ok := got[strings.ToUpper(k)]
		if !ok {
			t.Errorf("Parse missing key %s", k)
			continue
		}
		if len(gv) != len(vals) {
			t.Errorf("key %s: got values %v, want %v", k, gv, vals)
		}
	}
}

func TestParseKeyTargeted(t *testing.T) {
	h := New("SYSTEM")
	if err := h.CreateKey(`CurrentControlSet\Services\hxdef`); err != nil {
		t.Fatal(err)
	}
	if err := h.SetString(`CurrentControlSet\Services\hxdef`, "ImagePath", "hxdef100.exe"); err != nil {
		t.Fatal(err)
	}
	vals, err := ParseKey(h.Snapshot(), `CurrentControlSet\Services\hxdef`)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || vals[0].String() != "hxdef100.exe" {
		t.Errorf("ParseKey = %v", vals)
	}
	if _, err := ParseKey(h.Snapshot(), `No\Such\Key`); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing key = %v", err)
	}
}

func TestCellReuseAfterDelete(t *testing.T) {
	h := New("S")
	if err := h.CreateKey("k"); err != nil {
		t.Fatal(err)
	}
	big := strings.Repeat("z", 600)
	for i := 0; i < 40; i++ {
		if err := h.SetString("k", fmt.Sprintf("v%d", i), big); err != nil {
			t.Fatal(err)
		}
	}
	size1 := len(h.Bytes())
	for i := 0; i < 40; i++ {
		if err := h.DeleteValue("k", fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		if err := h.SetString("k", fmt.Sprintf("w%d", i), big); err != nil {
			t.Fatal(err)
		}
	}
	size2 := len(h.Bytes())
	if size2 > size1+2*binSize {
		t.Errorf("allocator not reusing freed cells: %d -> %d bytes", size1, size2)
	}
}

func TestManyKeysStress(t *testing.T) {
	h := New("SOFTWARE")
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf(`Vendor%d\App\Settings`, i%30)
		if err := h.CreateKey(k); err != nil {
			t.Fatal(err)
		}
		if err := h.SetString(k, fmt.Sprintf("opt%d", i), "val"); err != nil {
			t.Fatal(err)
		}
	}
	raw, stats, err := Parse(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if stats.ValuesParsed != 300 {
		t.Errorf("ValuesParsed = %d, want 300", stats.ValuesParsed)
	}
	if len(raw) != 1+30*3 {
		t.Errorf("keys parsed = %d, want 91", len(raw))
	}
}

// Property: any set of distinct value names written under a key is
// exactly what EnumValues and the raw parser return.
func TestQuickValueSetMatchesParse(t *testing.T) {
	f := func(names []string, payload []byte) bool {
		h := New("Q")
		if err := h.CreateKey("k"); err != nil {
			return false
		}
		want := map[string]bool{}
		for i, n := range names {
			if i >= 12 {
				break
			}
			n = strings.ReplaceAll(n, "\\", "_")
			// Truncate by runes and round-trip through UTF-16 so the name
			// is exactly representable in the on-disk encoding.
			if r := []rune(n); len(r) > 30 {
				n = string(r[:30])
			}
			n = decodeUTF16(encodeUTF16(n))
			if n == "" {
				n = fmt.Sprintf("empty%d", i)
			}
			dup := false
			for w := range want {
				if keyEqual(w, n) {
					dup = true
				}
			}
			if dup {
				continue
			}
			if err := h.SetValue("k", Value{Name: n, Type: RegBinary, Data: payload}); err != nil {
				return false
			}
			want[n] = true
		}
		vals, err := h.EnumValues("k")
		if err != nil || len(vals) != len(want) {
			return false
		}
		for _, v := range vals {
			if !want[v.Name] || !bytes.Equal(v.Data, payload) {
				return false
			}
		}
		raw, _, err := Parse(h.Snapshot())
		if err != nil {
			return false
		}
		for _, k := range raw {
			if k.Path == "k" && len(k.Values) != len(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
