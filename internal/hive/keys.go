package hive

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// nkRecord is the parsed form of a key cell.
type nkRecord struct {
	parent     uint32
	subkeyN    uint32
	subkeyList uint32
	valueN     uint32
	valueList  uint32
	name       string
}

const (
	nkParentOff     = 4
	nkSubkeyNOff    = 8
	nkSubkeyListOff = 12
	nkValueNOff     = 16
	nkValueListOff  = 20
	nkNameLenOff    = 24
	nkNameOff       = 28
)

func (h *Hive) writeNK(rec nkRecord) uint32 {
	name := encodeUTF16(rec.name)
	off := h.alloc(nkNameOff + len(name))
	p, _ := h.cellPayload(off)
	copy(p, "nk")
	binary.LittleEndian.PutUint32(p[nkParentOff:], rec.parent)
	binary.LittleEndian.PutUint32(p[nkSubkeyNOff:], rec.subkeyN)
	binary.LittleEndian.PutUint32(p[nkSubkeyListOff:], rec.subkeyList)
	binary.LittleEndian.PutUint32(p[nkValueNOff:], rec.valueN)
	binary.LittleEndian.PutUint32(p[nkValueListOff:], rec.valueList)
	binary.LittleEndian.PutUint16(p[nkNameLenOff:], uint16(len(name)/2))
	copy(p[nkNameOff:], name)
	return off
}

func (h *Hive) readNK(off uint32) (nkRecord, error) {
	var rec nkRecord
	p, err := h.cellPayload(off)
	if err != nil {
		return rec, err
	}
	if len(p) < nkNameOff || string(p[:2]) != "nk" {
		return rec, fmt.Errorf("%w: cell %#x is not nk", ErrCorrupt, off)
	}
	rec.parent = binary.LittleEndian.Uint32(p[nkParentOff:])
	rec.subkeyN = binary.LittleEndian.Uint32(p[nkSubkeyNOff:])
	rec.subkeyList = binary.LittleEndian.Uint32(p[nkSubkeyListOff:])
	rec.valueN = binary.LittleEndian.Uint32(p[nkValueNOff:])
	rec.valueList = binary.LittleEndian.Uint32(p[nkValueListOff:])
	n := int(binary.LittleEndian.Uint16(p[nkNameLenOff:]))
	if nkNameOff+2*n > len(p) {
		return rec, fmt.Errorf("%w: nk name overruns cell %#x", ErrCorrupt, off)
	}
	rec.name = decodeUTF16(p[nkNameOff : nkNameOff+2*n])
	return rec, nil
}

// setNKField updates one u32 field of an nk cell in place.
func (h *Hive) setNKField(off uint32, fieldOff int, v uint32) error {
	p, err := h.cellPayload(off)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(p[fieldOff:], v)
	return nil
}

// --- subkey lists (lf cells) ----------------------------------------------

func (h *Hive) readList(off uint32, sig string, count int) ([]uint32, error) {
	if off == invalidOffset || count == 0 {
		return nil, nil
	}
	p, err := h.cellPayload(off)
	if err != nil {
		return nil, err
	}
	base := 0
	if sig != "" {
		if len(p) < 4 || string(p[:2]) != sig {
			return nil, fmt.Errorf("%w: cell %#x is not %s", ErrCorrupt, off, sig)
		}
		count = int(binary.LittleEndian.Uint16(p[2:]))
		base = 4
	}
	if base+4*count > len(p) {
		return nil, fmt.Errorf("%w: list %#x overruns cell", ErrCorrupt, off)
	}
	out := make([]uint32, count)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(p[base+4*i:])
	}
	return out, nil
}

func (h *Hive) writeLF(entries []uint32) uint32 {
	off := h.alloc(4 + 4*len(entries))
	p, _ := h.cellPayload(off)
	copy(p, "lf")
	binary.LittleEndian.PutUint16(p[2:], uint16(len(entries)))
	for i, e := range entries {
		binary.LittleEndian.PutUint32(p[4+4*i:], e)
	}
	return off
}

func (h *Hive) writeValueList(entries []uint32) uint32 {
	off := h.alloc(4 * len(entries))
	p, _ := h.cellPayload(off)
	for i, e := range entries {
		binary.LittleEndian.PutUint32(p[4*i:], e)
	}
	return off
}

// --- vk cells ----------------------------------------------------------------

const (
	vkNameLenOff = 2
	vkDataLenOff = 4
	vkDataOff    = 8
	vkTypeOff    = 12
	vkNameOff    = 16

	vkInlineFlag = 0x80000000
)

func (h *Hive) writeVK(v Value) uint32 {
	name := encodeUTF16(v.Name)
	off := h.alloc(vkNameOff + len(name))
	p, _ := h.cellPayload(off)
	copy(p, "vk")
	binary.LittleEndian.PutUint16(p[vkNameLenOff:], uint16(len(name)/2))
	binary.LittleEndian.PutUint32(p[vkTypeOff:], v.Type)
	copy(p[vkNameOff:], name)
	if len(v.Data) <= 4 {
		binary.LittleEndian.PutUint32(p[vkDataLenOff:], uint32(len(v.Data))|vkInlineFlag)
		var inline [4]byte
		copy(inline[:], v.Data)
		copy(p[vkDataOff:], inline[:])
		return off
	}
	dataOff := h.alloc(len(v.Data))
	// Re-fetch: alloc may have grown the buffer and moved it.
	p, _ = h.cellPayload(off)
	dp, _ := h.cellPayload(dataOff)
	copy(dp, v.Data)
	binary.LittleEndian.PutUint32(p[vkDataLenOff:], uint32(len(v.Data)))
	binary.LittleEndian.PutUint32(p[vkDataOff:], dataOff)
	return off
}

func (h *Hive) readVK(off uint32) (Value, uint32, error) {
	var v Value
	p, err := h.cellPayload(off)
	if err != nil {
		return v, invalidOffset, err
	}
	if len(p) < vkNameOff || string(p[:2]) != "vk" {
		return v, invalidOffset, fmt.Errorf("%w: cell %#x is not vk", ErrCorrupt, off)
	}
	n := int(binary.LittleEndian.Uint16(p[vkNameLenOff:]))
	if vkNameOff+2*n > len(p) {
		return v, invalidOffset, fmt.Errorf("%w: vk name overruns cell %#x", ErrCorrupt, off)
	}
	v.Name = decodeUTF16(p[vkNameOff : vkNameOff+2*n])
	v.Type = binary.LittleEndian.Uint32(p[vkTypeOff:])
	dataLen := binary.LittleEndian.Uint32(p[vkDataLenOff:])
	if dataLen&vkInlineFlag != 0 {
		n := int(dataLen &^ vkInlineFlag)
		if n > 4 {
			return v, invalidOffset, fmt.Errorf("%w: inline data length %d", ErrCorrupt, n)
		}
		v.Data = h.retainData(p[vkDataOff : vkDataOff+n : vkDataOff+n])
		return v, invalidOffset, nil
	}
	dataOff := binary.LittleEndian.Uint32(p[vkDataOff:])
	dp, err := h.cellPayload(dataOff)
	if err != nil {
		return v, invalidOffset, err
	}
	if int(dataLen) > len(dp) {
		return v, invalidOffset, fmt.Errorf("%w: vk data overruns cell %#x", ErrCorrupt, dataOff)
	}
	v.Data = h.retainData(dp[:dataLen:dataLen])
	return v, dataOff, nil
}

// retainData applies the hive's ownership discipline to value bytes
// about to escape a read: a borrowed (read-only, caller-owned image)
// hive returns the sub-slice as-is — the raw-parse hot path never pays
// the copy — while a live hive keeps the historical defensive copy,
// since its buffer is mutated and reallocated in place by SetValue and
// friends.
func (h *Hive) retainData(b []byte) []byte {
	if h.borrow {
		return b
	}
	return append([]byte(nil), b...)
}

// --- path-level operations ---------------------------------------------------

// SplitKeyPath splits a backslash-separated key path into components.
func SplitKeyPath(path string) []string {
	path = strings.Trim(path, "\\")
	if path == "" {
		return nil
	}
	return strings.Split(path, "\\")
}

// keyEqual compares key names with full counted-string, case-insensitive
// semantics (the configuration manager's comparison).
func keyEqual(a, b string) bool { return strings.EqualFold(a, b) }

// lookupChild returns the offset of the named child of the nk at off.
func (h *Hive) lookupChild(off uint32, name string) (uint32, error) {
	rec, err := h.readNK(off)
	if err != nil {
		return 0, err
	}
	subs, err := h.readList(rec.subkeyList, "lf", int(rec.subkeyN))
	if err != nil {
		return 0, err
	}
	for _, s := range subs {
		child, err := h.readNK(s)
		if err != nil {
			return 0, err
		}
		if keyEqual(child.name, name) {
			return s, nil
		}
	}
	return 0, fmt.Errorf("%w: key %q", ErrNotFound, printable(name))
}

// resolveKey walks path from the root.
func (h *Hive) resolveKey(path string) (uint32, error) {
	cur := h.rootOffset()
	for _, comp := range SplitKeyPath(path) {
		next, err := h.lookupChild(cur, comp)
		if err != nil {
			return 0, err
		}
		cur = next
	}
	return cur, nil
}

// KeyExists reports whether the key path resolves.
func (h *Hive) KeyExists(path string) bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	_, err := h.resolveKey(path)
	return err == nil
}

// CreateKey creates the key path, making intermediate keys as needed.
func (h *Hive) CreateKey(path string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	cur := h.rootOffset()
	for _, comp := range SplitKeyPath(path) {
		next, err := h.lookupChild(cur, comp)
		if err == nil {
			cur = next
			continue
		}
		rec, err := h.readNK(cur)
		if err != nil {
			return err
		}
		child := h.writeNK(nkRecord{parent: cur, subkeyList: invalidOffset, valueList: invalidOffset, name: comp})
		subs, err := h.readList(rec.subkeyList, "lf", int(rec.subkeyN))
		if err != nil {
			return err
		}
		subs = append(subs, child)
		newList := h.writeLF(subs)
		h.free(rec.subkeyList)
		if err := h.setNKField(cur, nkSubkeyListOff, newList); err != nil {
			return err
		}
		if err := h.setNKField(cur, nkSubkeyNOff, uint32(len(subs))); err != nil {
			return err
		}
		cur = child
	}
	h.commit()
	return nil
}

// EnumKeys returns the names of the subkeys of path, sorted.
func (h *Hive) EnumKeys(path string) ([]string, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.enumKeys(path)
}

func (h *Hive) enumKeys(path string) ([]string, error) {
	off, err := h.resolveKey(path)
	if err != nil {
		return nil, err
	}
	rec, err := h.readNK(off)
	if err != nil {
		return nil, err
	}
	subs, err := h.readList(rec.subkeyList, "lf", int(rec.subkeyN))
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(subs))
	for _, s := range subs {
		child, err := h.readNK(s)
		if err != nil {
			return nil, err
		}
		out = append(out, child.name)
	}
	sort.Slice(out, func(i, j int) bool { return strings.ToUpper(out[i]) < strings.ToUpper(out[j]) })
	return out, nil
}

// EnumValues returns all values of the key at path, sorted by name.
func (h *Hive) EnumValues(path string) ([]Value, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.enumValues(path)
}

func (h *Hive) enumValues(path string) ([]Value, error) {
	off, err := h.resolveKey(path)
	if err != nil {
		return nil, err
	}
	rec, err := h.readNK(off)
	if err != nil {
		return nil, err
	}
	vals, err := h.readList(rec.valueList, "", int(rec.valueN))
	if err != nil {
		return nil, err
	}
	out := make([]Value, 0, len(vals))
	for _, voff := range vals {
		v, _, err := h.readVK(voff)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return strings.ToUpper(out[i].Name) < strings.ToUpper(out[j].Name) })
	return out, nil
}

// GetValue returns the named value of the key at path. Name comparison
// uses full counted-string semantics.
func (h *Hive) GetValue(path, name string) (Value, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	vals, err := h.enumValues(path)
	if err != nil {
		return Value{}, err
	}
	for _, v := range vals {
		if keyEqual(v.Name, name) {
			return v, nil
		}
	}
	return Value{}, fmt.Errorf("%w: value %q under %q", ErrNotFound, printable(name), path)
}

// SetValue creates or replaces a value under the key at path.
func (h *Hive) SetValue(path string, v Value) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	off, err := h.resolveKey(path)
	if err != nil {
		return err
	}
	rec, err := h.readNK(off)
	if err != nil {
		return err
	}
	vals, err := h.readList(rec.valueList, "", int(rec.valueN))
	if err != nil {
		return err
	}
	newVK := h.writeVK(v)
	replaced := false
	for i, voff := range vals {
		old, dataOff, err := h.readVK(voff)
		if err != nil {
			return err
		}
		if keyEqual(old.Name, v.Name) {
			h.free(voff)
			if dataOff != invalidOffset {
				h.free(dataOff)
			}
			vals[i] = newVK
			replaced = true
			break
		}
	}
	if !replaced {
		vals = append(vals, newVK)
	}
	newList := h.writeValueList(vals)
	h.free(rec.valueList)
	if err := h.setNKField(off, nkValueListOff, newList); err != nil {
		return err
	}
	if err := h.setNKField(off, nkValueNOff, uint32(len(vals))); err != nil {
		return err
	}
	h.commit()
	return nil
}

// SetString is shorthand for SetValue with a REG_SZ value.
func (h *Hive) SetString(path, name, data string) error {
	return h.SetValue(path, StringValue(name, data))
}

// DeleteValue removes the named value from the key at path.
func (h *Hive) DeleteValue(path, name string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	off, err := h.resolveKey(path)
	if err != nil {
		return err
	}
	rec, err := h.readNK(off)
	if err != nil {
		return err
	}
	vals, err := h.readList(rec.valueList, "", int(rec.valueN))
	if err != nil {
		return err
	}
	for i, voff := range vals {
		old, dataOff, err := h.readVK(voff)
		if err != nil {
			return err
		}
		if !keyEqual(old.Name, name) {
			continue
		}
		h.free(voff)
		if dataOff != invalidOffset {
			h.free(dataOff)
		}
		vals = append(vals[:i], vals[i+1:]...)
		newList := invalidOffset
		if len(vals) > 0 {
			newList = int(h.writeValueList(vals))
		}
		h.free(rec.valueList)
		if err := h.setNKField(off, nkValueListOff, uint32(newList)); err != nil {
			return err
		}
		if err := h.setNKField(off, nkValueNOff, uint32(len(vals))); err != nil {
			return err
		}
		h.commit()
		return nil
	}
	return fmt.Errorf("%w: value %q under %q", ErrNotFound, printable(name), path)
}

// DeleteKey removes an empty key.
func (h *Hive) DeleteKey(path string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.deleteKey(path)
}

func (h *Hive) deleteKey(path string) error {
	comps := SplitKeyPath(path)
	if len(comps) == 0 {
		return fmt.Errorf("hive: cannot delete the root key")
	}
	off, err := h.resolveKey(path)
	if err != nil {
		return err
	}
	rec, err := h.readNK(off)
	if err != nil {
		return err
	}
	if rec.subkeyN > 0 {
		return fmt.Errorf("%w: %s", ErrNotEmpty, path)
	}
	// Free values.
	vals, err := h.readList(rec.valueList, "", int(rec.valueN))
	if err != nil {
		return err
	}
	for _, voff := range vals {
		_, dataOff, err := h.readVK(voff)
		if err == nil && dataOff != invalidOffset {
			h.free(dataOff)
		}
		h.free(voff)
	}
	h.free(rec.valueList)
	// Unlink from parent.
	parentRec, err := h.readNK(rec.parent)
	if err != nil {
		return err
	}
	subs, err := h.readList(parentRec.subkeyList, "lf", int(parentRec.subkeyN))
	if err != nil {
		return err
	}
	for i, s := range subs {
		if s == off {
			subs = append(subs[:i], subs[i+1:]...)
			break
		}
	}
	newList := invalidOffset
	if len(subs) > 0 {
		newList = int(h.writeLF(subs))
	}
	h.free(parentRec.subkeyList)
	if err := h.setNKField(rec.parent, nkSubkeyListOff, uint32(newList)); err != nil {
		return err
	}
	if err := h.setNKField(rec.parent, nkSubkeyNOff, uint32(len(subs))); err != nil {
		return err
	}
	h.free(off)
	h.commit()
	return nil
}

// DeleteKeyTree removes a key and all its descendants.
func (h *Hive) DeleteKeyTree(path string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.deleteKeyTree(path)
}

func (h *Hive) deleteKeyTree(path string) error {
	subs, err := h.enumKeys(path)
	if err != nil {
		return err
	}
	for _, s := range subs {
		if err := h.deleteKeyTree(path + "\\" + s); err != nil {
			return err
		}
	}
	return h.deleteKey(path)
}

// printable makes embedded NULs visible in error messages.
func printable(s string) string {
	return strings.ReplaceAll(s, "\x00", "\\0")
}
