package hive

import "encoding/binary"

// Deleted-cell forensics: DeleteKey and DeleteValue mark cells free but
// leave their contents in place until the allocator reuses them — just
// like real hives. Scanning the free cells for intact nk/vk signatures
// recovers recently deleted keys and values, e.g. the auto-start hooks a
// rootkit removed to cover its tracks after the operator started
// investigating.

// DeletedKey is one recoverable deleted key cell.
type DeletedKey struct {
	Name   string
	Offset uint32
}

// DeletedValue is one recoverable deleted value cell.
type DeletedValue struct {
	Name   string
	Type   uint32
	Offset uint32
}

// DeletedEntries holds the residue recovered from a hive image.
type DeletedEntries struct {
	Keys   []DeletedKey
	Values []DeletedValue
}

// ScanDeleted walks every free cell of a hive image and recovers intact
// nk and vk records.
func ScanDeleted(image []byte) (*DeletedEntries, error) {
	if _, err := Open(image); err != nil {
		return nil, err
	}
	out := &DeletedEntries{}
	for binStart := headerSize; binStart+binSize <= len(image); binStart += binSize {
		if string(image[binStart:binStart+4]) != "hbin" {
			continue
		}
		pos := binStart + binHdrSize
		end := binStart + binSize
		for pos+4 <= end {
			size := int32(binary.LittleEndian.Uint32(image[pos:]))
			if size == 0 {
				break
			}
			n := int(size)
			free := n > 0
			if n < 0 {
				n = -n
			}
			if n < 8 || pos+n > end {
				break // corrupt cell chain; stop walking this bin
			}
			if free {
				recoverCell(image[pos+4:pos+n], uint32(pos-headerSize), out)
			}
			pos += n
		}
	}
	return out, nil
}

// recoverCell inspects one free cell's payload for an intact record.
func recoverCell(p []byte, off uint32, out *DeletedEntries) {
	if len(p) < 4 {
		return
	}
	switch string(p[:2]) {
	case "nk":
		if len(p) < nkNameOff {
			return
		}
		n := int(binary.LittleEndian.Uint16(p[nkNameLenOff:]))
		if n == 0 || nkNameOff+2*n > len(p) {
			return
		}
		out.Keys = append(out.Keys, DeletedKey{
			Name:   decodeUTF16(p[nkNameOff : nkNameOff+2*n]),
			Offset: off,
		})
	case "vk":
		if len(p) < vkNameOff {
			return
		}
		n := int(binary.LittleEndian.Uint16(p[vkNameLenOff:]))
		if n == 0 || vkNameOff+2*n > len(p) {
			return
		}
		out.Values = append(out.Values, DeletedValue{
			Name:   decodeUTF16(p[vkNameOff : vkNameOff+2*n]),
			Type:   binary.LittleEndian.Uint32(p[vkTypeOff:]),
			Offset: off,
		})
	}
}
