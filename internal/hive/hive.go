// Package hive implements a binary Windows-Registry hive file format
// modeled on regf: a 512-byte header followed by 4 KiB "hbin" blocks
// containing size-prefixed cells — nk (key), vk (value), lf (subkey
// list), value-list and data cells. Names are stored as *counted* UTF-16
// strings, which is what makes the embedded-NUL hiding trick from the
// paper possible: the Win32 API layer treats names as NUL-terminated and
// so cannot see or open keys whose stored names contain NULs, while the
// raw parser (and the Native API layer) read the full counted string.
//
// The hive buffer *is* the backing file: the configuration manager
// mutates it in place, copying it yields the file a low-level scanner
// parses, and mounting it under a clean OS reads the same bytes.
package hive

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
	"unicode/utf16"
)

// Registry value types (the Windows REG_* codes).
const (
	RegNone     = 0
	RegSZ       = 1
	RegExpandSZ = 2
	RegBinary   = 3
	RegDword    = 4
	RegMultiSZ  = 7
)

const (
	headerSize = 512
	binSize    = 4096
	binHdrSize = 16

	invalidOffset = 0xFFFFFFFF

	hdrSeq1Off   = 4
	hdrSeq2Off   = 8
	hdrRootOff   = 36
	hdrLengthOff = 40
	hdrNameOff   = 48
	hdrNameCap   = 64
)

var (
	// ErrNotFound reports a missing key or value.
	ErrNotFound = errors.New("hive: not found")
	// ErrExists reports a create over an existing key.
	ErrExists = errors.New("hive: already exists")
	// ErrCorrupt reports an unparseable structure.
	ErrCorrupt = errors.New("hive: corrupt structure")
	// ErrNotEmpty reports deletion of a key with subkeys.
	ErrNotEmpty = errors.New("hive: key has subkeys")
)

// Value is one name/typed-data pair under a key.
type Value struct {
	Name string
	Type uint32
	Data []byte
}

// String interprets the value data as a Registry string (UTF-16LE).
func (v Value) String() string {
	if v.Type == RegSZ || v.Type == RegExpandSZ {
		return decodeUTF16(v.Data)
	}
	return string(v.Data)
}

// StringValue builds a REG_SZ value.
func StringValue(name, data string) Value {
	return Value{Name: name, Type: RegSZ, Data: encodeUTF16(data)}
}

// DwordValue builds a REG_DWORD value.
func DwordValue(name string, data uint32) Value {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, data)
	return Value{Name: name, Type: RegDword, Data: b}
}

// Dword interprets the value data as a 32-bit integer.
func (v Value) Dword() uint32 {
	if len(v.Data) < 4 {
		return 0
	}
	return binary.LittleEndian.Uint32(v.Data)
}

// Hive is a loaded hive. The zero value is not usable; call New or Open.
//
// A read-write lock makes key reads (EnumKeys, GetValue, Snapshot) safe
// against concurrent mutators. Bytes returns the live buffer without
// synchronization; concurrent low-level scans must copy via Snapshot.
type Hive struct {
	mu    sync.RWMutex
	buf   []byte
	name  string
	gen   uint64 // mutation generation, see Generation
	fault SnapshotFault
	// borrow marks a read-only hive opened over caller-owned bytes
	// (OpenBorrowed): value reads return sub-slices of the image instead
	// of defensive copies. Mutators must never run on a borrowed hive.
	borrow bool
}

// SnapshotFault is a fault-injection hook over hive snapshots: it may
// damage the freshly copied image in place before the raw parser sees
// it. The live hive is never touched.
type SnapshotFault interface {
	CorruptSnapshot(name string, img []byte)
}

// SetSnapshotFault installs (or, with nil, removes) the snapshot fault
// hook.
func (h *Hive) SetSnapshotFault(f SnapshotFault) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.fault = f
}

// New creates an empty hive with a root key.
func New(name string) *Hive {
	h := &Hive{buf: make([]byte, headerSize), name: name}
	copy(h.buf, "regf")
	nameBytes := encodeUTF16(name)
	if len(nameBytes) > hdrNameCap {
		nameBytes = nameBytes[:hdrNameCap]
	}
	copy(h.buf[hdrNameOff:], nameBytes)
	root := h.writeNK(nkRecord{parent: invalidOffset, subkeyList: invalidOffset, valueList: invalidOffset, name: name})
	binary.LittleEndian.PutUint32(h.buf[hdrRootOff:], root)
	h.commit()
	return h
}

// Open loads an existing hive image. The image is used in place (no
// copy), matching how the OS maps the backing file.
func Open(buf []byte) (*Hive, error) {
	if len(buf) < headerSize || string(buf[:4]) != "regf" {
		return nil, fmt.Errorf("%w: bad header", ErrCorrupt)
	}
	seq1 := binary.LittleEndian.Uint32(buf[hdrSeq1Off:])
	seq2 := binary.LittleEndian.Uint32(buf[hdrSeq2Off:])
	if seq1 != seq2 {
		return nil, fmt.Errorf("%w: torn write (seq %d != %d)", ErrCorrupt, seq1, seq2)
	}
	declared := binary.LittleEndian.Uint32(buf[hdrLengthOff:])
	if uint64(declared) > uint64(len(buf)-headerSize) {
		return nil, fmt.Errorf("%w: truncated image (header declares %d data bytes, file has %d)",
			ErrCorrupt, declared, len(buf)-headerSize)
	}
	h := &Hive{buf: buf}
	h.name = decodeUTF16First(buf[hdrNameOff : hdrNameOff+hdrNameCap])
	root := binary.LittleEndian.Uint32(buf[hdrRootOff:])
	if _, err := h.readNK(root); err != nil {
		return nil, err
	}
	return h, nil
}

// OpenBorrowed opens a read-only hive view directly over buf without
// any defensive copying: Value.Data returned from reads aliases buf.
// The caller owns buf and must keep it immutable and alive for as long
// as any returned Value is retained (the raw-scan paths convert every
// value to an owned string before the image goes out of scope). Calling
// any mutator on a borrowed hive panics.
func OpenBorrowed(buf []byte) (*Hive, error) {
	h, err := Open(buf)
	if err != nil {
		return nil, err
	}
	h.borrow = true
	return h, nil
}

// Name returns the hive's display name.
func (h *Hive) Name() string { return h.name }

// Bytes returns the live backing bytes (the hive file contents). The
// slice is not synchronized with mutators; concurrent scanners must use
// Snapshot instead.
func (h *Hive) Bytes() []byte { return h.buf }

// Snapshot copies the hive file, as GhostBuster's low-level scan does
// before parsing ("our low-level scan copies and parses each hive file").
func (h *Hive) Snapshot() []byte {
	h.mu.RLock()
	out := make([]byte, len(h.buf))
	copy(out, h.buf)
	fault := h.fault
	name := h.name
	h.mu.RUnlock()
	if fault != nil {
		fault.CorruptSnapshot(name, out)
	}
	return out
}

// CorruptImageHeader damages a snapshot copy's header for fault
// injection: mode "magic" zeroes the regf signature, "torn" desyncs the
// sequence pair (a torn write), "root" points the root cell out of
// bounds. All three fail loudly in Open rather than silently altering
// key content.
func CorruptImageHeader(img []byte, mode string) {
	if len(img) < headerSize {
		return
	}
	switch mode {
	case "magic":
		img[0], img[1], img[2], img[3] = 0, 0, 0, 0
	case "torn":
		seq1 := binary.LittleEndian.Uint32(img[hdrSeq1Off:])
		binary.LittleEndian.PutUint32(img[hdrSeq2Off:], seq1+1)
	case "root":
		binary.LittleEndian.PutUint32(img[hdrRootOff:], 0x7FFFFFF0)
	}
}

// RootOffset returns the root nk cell offset.
func (h *Hive) RootOffset() uint32 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.rootOffset()
}

func (h *Hive) rootOffset() uint32 {
	return binary.LittleEndian.Uint32(h.buf[hdrRootOff:])
}

// Generation returns the hive's mutation generation: the number of
// commits since the hive was loaded. Every mutator ends with a commit,
// so incremental scanners can key hive-parse caches on this value; it
// increases whenever the backing bytes may have changed and never
// stays flat across a change.
func (h *Hive) Generation() uint64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.gen
}

// commit bumps both sequence numbers, marking a consistent state.
func (h *Hive) commit() {
	if h.borrow {
		panic("hive: mutation on borrowed hive")
	}
	h.gen++
	seq := binary.LittleEndian.Uint32(h.buf[hdrSeq1Off:]) + 1
	binary.LittleEndian.PutUint32(h.buf[hdrSeq1Off:], seq)
	binary.LittleEndian.PutUint32(h.buf[hdrSeq2Off:], seq)
	binary.LittleEndian.PutUint32(h.buf[hdrLengthOff:], uint32(len(h.buf)-headerSize))
}

// --- cell allocator ------------------------------------------------------
//
// Offsets are relative to the end of the header (the start of the first
// hbin), as in regf. A cell starts with an int32 size covering the whole
// cell including the size field: negative means allocated.

func (h *Hive) cellPayload(off uint32) ([]byte, error) {
	pos := int(off) + headerSize
	if off == invalidOffset || pos+4 > len(h.buf) {
		return nil, fmt.Errorf("%w: cell offset %#x out of range", ErrCorrupt, off)
	}
	size := int32(binary.LittleEndian.Uint32(h.buf[pos:]))
	if size >= 0 {
		return nil, fmt.Errorf("%w: cell %#x is free", ErrCorrupt, off)
	}
	n := int(-size)
	if n < 4 || pos+n > len(h.buf) {
		return nil, fmt.Errorf("%w: cell %#x size %d", ErrCorrupt, off, n)
	}
	return h.buf[pos+4 : pos+n], nil
}

// alloc finds or creates a free cell with at least payload bytes and
// marks it allocated, returning its offset.
func (h *Hive) alloc(payload int) uint32 {
	if h.borrow {
		panic("hive: mutation on borrowed hive")
	}
	need := (payload + 4 + 7) &^ 7
	// First fit over existing bins.
	for binStart := headerSize; binStart+binSize <= len(h.buf); binStart += binSize {
		pos := binStart + binHdrSize
		end := binStart + binSize
		for pos+4 <= end {
			size := int32(binary.LittleEndian.Uint32(h.buf[pos:]))
			if size == 0 {
				break // rest of bin never used
			}
			n := int(size)
			if n < 0 {
				n = -n
			}
			if size > 0 && n >= need {
				h.carve(pos, n, need)
				return uint32(pos - headerSize)
			}
			pos += n
		}
	}
	// Append a new bin (or several for oversized cells).
	bins := 1
	for bins*binSize-binHdrSize < need {
		bins++
	}
	binStart := len(h.buf)
	h.buf = append(h.buf, make([]byte, bins*binSize)...)
	copy(h.buf[binStart:], "hbin")
	binary.LittleEndian.PutUint32(h.buf[binStart+4:], uint32(binStart-headerSize))
	binary.LittleEndian.PutUint32(h.buf[binStart+8:], uint32(bins*binSize))
	pos := binStart + binHdrSize
	h.carve(pos, bins*binSize-binHdrSize, need)
	return uint32(pos - headerSize)
}

// carve allocates need bytes at pos out of a free region of total bytes,
// leaving the remainder as a free cell.
func (h *Hive) carve(pos, total, need int) {
	rest := total - need
	if rest >= 16 {
		binary.LittleEndian.PutUint32(h.buf[pos:], uint32(int32(-need)))
		binary.LittleEndian.PutUint32(h.buf[pos+need:], uint32(int32(rest)))
	} else {
		binary.LittleEndian.PutUint32(h.buf[pos:], uint32(int32(-total)))
		need = total
	}
	// Zero the payload so stale data never leaks into new cells.
	for i := pos + 4; i < pos+need; i++ {
		h.buf[i] = 0
	}
}

// free releases a cell. The cell contents remain until reused — deleted
// keys leave residue, as in real hives.
func (h *Hive) free(off uint32) {
	pos := int(off) + headerSize
	if off == invalidOffset || pos+4 > len(h.buf) {
		return
	}
	size := int32(binary.LittleEndian.Uint32(h.buf[pos:]))
	if size < 0 {
		binary.LittleEndian.PutUint32(h.buf[pos:], uint32(-size))
	}
}

// --- UTF-16 helpers -------------------------------------------------------

func encodeUTF16(s string) []byte {
	u := utf16.Encode([]rune(s))
	b := make([]byte, 2*len(u))
	for i, c := range u {
		binary.LittleEndian.PutUint16(b[2*i:], c)
	}
	return b
}

func decodeUTF16(b []byte) string {
	u := make([]uint16, len(b)/2)
	for i := range u {
		u[i] = binary.LittleEndian.Uint16(b[2*i:])
	}
	return string(utf16.Decode(u))
}

// decodeUTF16First reads up to the first NUL (for the header name field).
func decodeUTF16First(b []byte) string {
	s := decodeUTF16(b)
	if i := strings.IndexByte(s, 0); i >= 0 {
		return s[:i]
	}
	return s
}
