package hive

import "fmt"

// RawKey is one key recovered by raw-parsing a hive image: its full path
// from the hive root and its values. This is GhostBuster's low-level
// Registry view — it bypasses every API layer by reading the backing
// file directly.
type RawKey struct {
	Path   string // backslash-joined, not including the root name
	Values []Value
}

// ParseStats reports the work a raw parse performed.
type ParseStats struct {
	KeysParsed   int
	ValuesParsed int
	BytesRead    int64
}

// Parse walks an entire hive image and returns every key with its
// values. Individual corrupt subtrees are skipped rather than aborting
// the scan, since the tool must survive hostile hives. Value data is
// defensively copied out of the image; use ParseBorrowed when the
// caller can uphold the borrow contract.
func Parse(image []byte) ([]RawKey, ParseStats, error) {
	h, err := Open(image)
	if err != nil {
		return nil, ParseStats{}, err
	}
	return parseAll(h, image)
}

// ParseBorrowed is Parse without the per-value defensive copy: every
// returned Value.Data aliases image. The caller must keep image
// immutable and alive while any returned value is retained — the
// GhostBuster ASEP scans satisfy this by converting each value to an
// owned string before the image is released.
func ParseBorrowed(image []byte) ([]RawKey, ParseStats, error) {
	h, err := OpenBorrowed(image)
	if err != nil {
		return nil, ParseStats{}, err
	}
	return parseAll(h, image)
}

func parseAll(h *Hive, image []byte) ([]RawKey, ParseStats, error) {
	var stats ParseStats
	stats.BytesRead = int64(len(image))
	var out []RawKey
	var walk func(off uint32, path string, depth int)
	walk = func(off uint32, path string, depth int) {
		if depth > 128 {
			return
		}
		rec, err := h.readNK(off)
		if err != nil {
			return
		}
		stats.KeysParsed++
		var values []Value
		vals, err := h.readList(rec.valueList, "", int(rec.valueN))
		if err == nil {
			for _, voff := range vals {
				v, _, err := h.readVK(voff)
				if err != nil {
					continue
				}
				stats.ValuesParsed++
				values = append(values, v)
			}
		}
		out = append(out, RawKey{Path: path, Values: values})
		subs, err := h.readList(rec.subkeyList, "lf", int(rec.subkeyN))
		if err != nil {
			return
		}
		for _, s := range subs {
			child, err := h.readNK(s)
			if err != nil {
				continue
			}
			childPath := child.name
			if path != "" {
				childPath = path + "\\" + child.name
			}
			walk(s, childPath, depth+1)
		}
	}
	walk(h.RootOffset(), "", 0)
	return out, stats, nil
}

// ParseKey raw-parses a single key path from an image, returning its
// values; used for targeted low-level reads (e.g. one ASEP key).
func ParseKey(image []byte, path string) ([]Value, error) {
	h, err := Open(image)
	if err != nil {
		return nil, err
	}
	off, err := h.resolveKey(path)
	if err != nil {
		return nil, err
	}
	rec, err := h.readNK(off)
	if err != nil {
		return nil, err
	}
	vals, err := h.readList(rec.valueList, "", int(rec.valueN))
	if err != nil {
		return nil, err
	}
	out := make([]Value, 0, len(vals))
	for _, voff := range vals {
		v, _, err := h.readVK(voff)
		if err != nil {
			return nil, fmt.Errorf("hive: parsing value under %s: %w", path, err)
		}
		out = append(out, v)
	}
	return out, nil
}
