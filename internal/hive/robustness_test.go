package hive

import (
	"fmt"
	"math/rand"
	"testing"
)

func buildPopulatedHive(t *testing.T) []byte {
	t.Helper()
	h := New("SOFTWARE")
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf(`Vendor%d\App\Settings`, i%8)
		if err := h.CreateKey(key); err != nil {
			t.Fatal(err)
		}
		if err := h.SetString(key, fmt.Sprintf("opt%d", i), "value"); err != nil {
			t.Fatal(err)
		}
	}
	return h.Snapshot()
}

// TestParseSurvivesRandomCorruption: hostile hives must never panic the
// raw parser — the paper's low-level scan runs against disks an attacker
// controls.
func TestParseSurvivesRandomCorruption(t *testing.T) {
	base := buildPopulatedHive(t)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		img := append([]byte(nil), base...)
		for i := 0; i < 1+rng.Intn(64); i++ {
			img[rng.Intn(len(img))] = byte(rng.Intn(256))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: Parse panicked: %v", trial, r)
				}
			}()
			_, _, _ = Parse(img)
			_, _ = ParseKey(img, `Vendor1\App\Settings`)
		}()
	}
}

// TestParseSurvivesTruncation: arbitrary truncation must not panic.
func TestParseSurvivesTruncation(t *testing.T) {
	base := buildPopulatedHive(t)
	for cut := 0; cut < len(base); cut += 97 {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("cut %d: panicked: %v", cut, r)
				}
			}()
			_, _, _ = Parse(base[:cut])
		}()
	}
}

// TestOpenedCorruptHiveOperationsDoNotPanic: even if a damaged hive
// opens, subsequent operations must fail gracefully.
func TestOpenedCorruptHiveOperationsDoNotPanic(t *testing.T) {
	base := buildPopulatedHive(t)
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 100; trial++ {
		img := append([]byte(nil), base...)
		// Corrupt only the cell area, keeping the header valid so Open
		// succeeds and the damage surfaces during operations.
		for i := 0; i < 1+rng.Intn(8); i++ {
			img[headerSize+rng.Intn(len(img)-headerSize)] ^= 0xFF
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: operation panicked: %v", trial, r)
				}
			}()
			h, err := Open(img)
			if err != nil {
				return
			}
			_, _ = h.EnumKeys("")
			_, _ = h.EnumValues(`Vendor1\App\Settings`)
			_ = h.CreateKey(`New\Key`)
			_ = h.SetString(`New\Key`, "v", "d")
		}()
	}
}

func TestScanDeletedRecoversRemovedKeyAndValue(t *testing.T) {
	h := New("SYSTEM")
	if err := h.CreateKey(`Services\EvilSvc`); err != nil {
		t.Fatal(err)
	}
	if err := h.SetString(`Services\EvilSvc`, "ImagePath", "evil.sys"); err != nil {
		t.Fatal(err)
	}
	if err := h.DeleteKeyTree(`Services\EvilSvc`); err != nil {
		t.Fatal(err)
	}
	residue, err := ScanDeleted(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	keyFound, valFound := false, false
	for _, k := range residue.Keys {
		if k.Name == "EvilSvc" {
			keyFound = true
		}
	}
	for _, v := range residue.Values {
		if v.Name == "ImagePath" {
			valFound = true
		}
	}
	if !keyFound || !valFound {
		t.Errorf("residue = %+v (key %v, value %v)", residue, keyFound, valFound)
	}
}

func TestScanDeletedEmptyOnFreshHive(t *testing.T) {
	h := New("X")
	if err := h.CreateKey("live"); err != nil {
		t.Fatal(err)
	}
	residue, err := ScanDeleted(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if len(residue.Keys) != 0 || len(residue.Values) != 0 {
		t.Errorf("fresh hive residue = %+v", residue)
	}
}

func TestScanDeletedSurvivesCorruption(t *testing.T) {
	h := New("X")
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%d", i)
		if err := h.CreateKey(k); err != nil {
			t.Fatal(err)
		}
		if err := h.DeleteKey(k); err != nil {
			t.Fatal(err)
		}
	}
	base := h.Snapshot()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		img := append([]byte(nil), base...)
		for i := 0; i < 1+rng.Intn(32); i++ {
			img[rng.Intn(len(img))] = byte(rng.Intn(256))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: ScanDeleted panicked: %v", trial, r)
				}
			}()
			_, _ = ScanDeleted(img)
		}()
	}
}
