package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ghostbuster/internal/faultinject"
)

func tmpJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "sweep.gbj")
}

// writeSample commits a small but representative history: header,
// schedule, attempts, and terminal records.
func writeSample(t *testing.T, path string) []Record {
	t.Helper()
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	result := json.RawMessage(`{"host":"host-a","infected":false}`)
	recs := []Record{
		{State: StateSweep, Kind: "inside", Hosts: []string{"host-a", "host-b"}},
		{State: StateScheduled, Host: "host-a"},
		{State: StateScheduled, Host: "host-b"},
		{State: StateRunning, Host: "host-a", Attempt: 1},
		{State: StateDone, Host: "host-a", Attempt: 1, ElapsedNs: 42, ResultHash: Hash(result), Result: result},
		{State: StateRunning, Host: "host-b", Attempt: 1},
	}
	for _, r := range recs {
		if _, err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := tmpJournal(t)
	want := writeSample(t, path)

	got, dropped, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Errorf("clean journal reported %d dropped bytes", dropped)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, wrote %d", len(got), len(want))
	}
	for i, r := range got {
		if r.Seq != i {
			t.Errorf("record %d has seq %d", i, r.Seq)
		}
		if r.State != want[i].State || r.Host != want[i].Host || r.Attempt != want[i].Attempt {
			t.Errorf("record %d = %+v, want %+v", i, r, want[i])
		}
	}
	if got[4].ResultHash != Hash(got[4].Result) {
		t.Error("terminal record's result hash does not verify after replay")
	}
}

func TestOpenContinuesSequence(t *testing.T) {
	path := tmpJournal(t)
	writeSample(t, path)

	j, rec, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 6 || rec.DroppedBytes != 0 {
		t.Fatalf("recovery = %d records, %d dropped", len(rec.Records), rec.DroppedBytes)
	}
	seq, err := j.Append(Record{State: StateDone, Host: "host-b", Attempt: 1})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 6 {
		t.Errorf("appended seq %d, want 6 (continuing the replayed history)", seq)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Errorf("journal has %d records after resume append, want 7", len(got))
	}
}

// TestTornTailRecovered: a crash mid-append leaves a half-written
// record; Open truncates to the last valid record and reports the loss.
func TestTornTailRecovered(t *testing.T) {
	path := tmpJournal(t)
	writeSample(t, path)
	if err := Corrupt(path, faultinject.KindTorn, 7); err != nil {
		t.Fatal(err)
	}

	j, rec, err := Open(path)
	if err != nil {
		t.Fatalf("torn tail must be recoverable: %v", err)
	}
	defer j.Close()
	if rec.DroppedBytes == 0 {
		t.Error("torn tail recovered with zero dropped bytes")
	}
	if len(rec.Records) >= 6 {
		t.Errorf("torn journal still replays %d of 6 records", len(rec.Records))
	}
	// The file itself was repaired: a second open sees a clean journal.
	if _, dropped, err := Read(path); err != nil || dropped != 0 {
		t.Errorf("journal not repaired on open: dropped=%d err=%v", dropped, err)
	}
	// Appends continue from the recovered sequence.
	if seq, err := j.Append(Record{State: StateRunning, Host: "host-b", Attempt: 2}); err != nil || seq != len(rec.Records) {
		t.Errorf("append after recovery: seq=%d err=%v, want seq=%d", seq, err, len(rec.Records))
	}
}

// TestBitFlipIsLoud: interior corruption must fail Open — a journal
// whose committed records cannot be trusted must never silently seed a
// resume.
func TestBitFlipIsLoud(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		path := tmpJournal(t)
		writeSample(t, path)
		if err := Corrupt(path, faultinject.KindFlip, seed); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open(path); err == nil {
			t.Errorf("seed %d: bit-flipped journal opened without error", seed)
		}
	}
}

// TestInteriorTruncationIsLoud: deleting a whole record line breaks the
// sequence contiguity check.
func TestInteriorTruncationIsLoud(t *testing.T) {
	path := tmpJournal(t)
	writeSample(t, path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	spliced := strings.Join(append(lines[:2], lines[3:]...), "")
	if err := os.WriteFile(path, []byte(spliced), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path); err == nil || !strings.Contains(err.Error(), "seq") {
		t.Errorf("spliced journal opened: err=%v, want seq contiguity failure", err)
	}
}

func TestEmptyJournalOpens(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, rec, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(rec.Records) != 0 || rec.DroppedBytes != 0 {
		t.Errorf("empty journal recovery = %+v", rec)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(Record{State: StateScheduled, Host: "x"}); err == nil {
		t.Error("append after close succeeded")
	}
}

func TestTerminalStates(t *testing.T) {
	for s, want := range map[State]bool{
		StateSweep: false, StateScheduled: false, StateRunning: false,
		StateDone: true, StateDegraded: true, StateFailed: true,
		StateQuarantined: true, StateAborted: false,
	} {
		if s.Terminal() != want {
			t.Errorf("%s.Terminal() = %v, want %v", s, s.Terminal(), want)
		}
	}
}

// TestTruncateRecords simulates the crash matrix's kill points: keep n
// records, optionally with a torn fragment of the next.
func TestTruncateRecords(t *testing.T) {
	for _, tc := range []struct {
		keep int
		torn bool
	}{{0, false}, {3, false}, {5, false}, {3, true}, {0, true}} {
		path := tmpJournal(t)
		writeSample(t, path)
		kept, err := TruncateRecords(path, tc.keep, tc.torn)
		if err != nil {
			t.Fatal(err)
		}
		if kept != tc.keep {
			t.Errorf("keep=%d torn=%v: kept %d", tc.keep, tc.torn, kept)
		}
		recs, dropped, err := Read(path)
		if err != nil {
			t.Fatalf("keep=%d torn=%v: truncated journal unreadable: %v", tc.keep, tc.torn, err)
		}
		if len(recs) != tc.keep {
			t.Errorf("keep=%d torn=%v: replayed %d records", tc.keep, tc.torn, len(recs))
		}
		if tc.torn && dropped == 0 {
			t.Errorf("keep=%d torn=%v: no torn tail left behind", tc.keep, tc.torn)
		}
		if !tc.torn && dropped != 0 {
			t.Errorf("keep=%d torn=%v: unexpected torn tail of %d bytes", tc.keep, tc.torn, dropped)
		}
	}
}

// TestConcurrentAppends: the sweep's worker pool appends from many
// goroutines; every record must land exactly once with contiguous
// sequence numbers.
func TestConcurrentAppends(t *testing.T) {
	path := tmpJournal(t)
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			_, err := j.Append(Record{State: StateRunning, Host: "h", Attempt: i})
			done <- err
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, dropped, err := Read(path)
	if err != nil || dropped != 0 {
		t.Fatalf("replay: dropped=%d err=%v", dropped, err)
	}
	if len(recs) != n {
		t.Fatalf("replayed %d records, appended %d", len(recs), n)
	}
	seen := map[int]bool{}
	for i, r := range recs {
		if r.Seq != i {
			t.Errorf("record %d has seq %d", i, r.Seq)
		}
		seen[r.Attempt] = true
	}
	if len(seen) != n {
		t.Errorf("%d distinct attempts recorded, want %d", len(seen), n)
	}
}
