// Package journal implements the durable sweep journal: an append-only,
// checksummed, crash-safe record of one fleet sweep's host state
// transitions. A sweep that is killed or wedged mid-run loses only its
// in-flight hosts; every committed terminal record survives, so a
// resumed sweep replays the journal instead of re-paying the whole
// fleet cost.
//
// The on-disk format is one framed record per line:
//
//	gbj1 <crc32c:8hex> <len> <payload-json>\n
//
// where the CRC and declared length cover the payload bytes. Recovery
// on open distinguishes the two corruption classes a hostile or crashed
// environment produces:
//
//   - A torn tail — trailing bytes after the last record terminator,
//     the half-written record of an append cut short by a crash — is
//     recovered by truncating to the last valid record. The dropped
//     byte count is reported, never hidden.
//   - Interior corruption — a complete record whose CRC, frame, or
//     sequence number is wrong (a flipped bit, a spliced or deleted
//     line) — is loud: Open fails. A journal whose committed history
//     cannot be trusted must not silently seed a resumed sweep.
//
// Records carry a content hash of the serialized host result
// (Record.ResultHash over Record.Result), so a resumed sweep verifies
// that the results it replays are the results that were committed —
// the journal is tamper-evident end-to-end, not just torn-tolerant.
package journal

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"strconv"
	"sync"

	"ghostbuster/internal/faultinject"
)

// magic prefixes every record line; the trailing 1 is the format
// version.
const magic = "gbj1"

// State is a host's position in the sweep lifecycle. A host moves
// scheduled -> running (once per attempt) -> one terminal state.
type State string

const (
	// StateSweep is the header record: sweep kind and enrolled hosts.
	StateSweep State = "sweep"
	// StateScheduled commits that the sweep intends to scan the host.
	StateScheduled State = "scheduled"
	// StateRunning commits that attempt N on the host has started. A
	// running record with no later terminal record marks an in-flight
	// host the crash interrupted — it is re-run on resume, and the
	// dangling attempt counts as failed for the circuit breaker.
	StateRunning State = "running"
	// StateDone is the clean terminal state.
	StateDone State = "done"
	// StateDegraded is terminal: the scan stood, but with degraded
	// units (see core.Report.DegradedUnits).
	StateDegraded State = "degraded"
	// StateFailed is terminal: the final permitted attempt errored.
	StateFailed State = "failed"
	// StateQuarantined is terminal: the per-host circuit breaker
	// opened after too many consecutive failed attempts.
	StateQuarantined State = "quarantined"
	// StateAborted is a sweep-level event: the fleet error budget was
	// exceeded and the sweep stopped itself loudly.
	StateAborted State = "aborted"
)

// Terminal reports whether the state commits a host's final outcome.
// A resumed sweep skips hosts with a terminal record and re-runs the
// rest.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateDegraded, StateFailed, StateQuarantined:
		return true
	}
	return false
}

// Record is one journal entry. The header record (StateSweep) carries
// Kind and Hosts; per-host records carry Host and, for terminal
// states, the serialized result with its content hash and the
// virtual-time charges.
type Record struct {
	Seq   int    `json:"seq"`
	State State  `json:"state"`
	Host  string `json:"host,omitempty"`
	// Kind and Hosts describe the sweep (header record only).
	Kind  string   `json:"kind,omitempty"`
	Hosts []string `json:"hosts,omitempty"`
	// Attempt is the cumulative attempt number (across resumes) for
	// running and terminal records.
	Attempt int `json:"attempt,omitempty"`
	// ElapsedNs and RetryNs are the virtual-time charges committed with
	// a terminal record, kept exact across the crash boundary.
	ElapsedNs int64 `json:"elapsedNs,omitempty"`
	RetryNs   int64 `json:"retryNs,omitempty"`
	// ResultHash is the content hash of Result (see Hash); a resumed
	// sweep re-verifies it before trusting the replayed result.
	ResultHash string `json:"resultHash,omitempty"`
	// Result is the serialized fleet.HostResult of a terminal record.
	Result json.RawMessage `json:"result,omitempty"`
	// Reason annotates aborted and quarantined records.
	Reason string `json:"reason,omitempty"`
}

// Recovery describes what Open found while replaying the journal.
type Recovery struct {
	// Records is the committed history, in append order.
	Records []Record
	// DroppedBytes is the size of the torn tail truncated on open;
	// zero means the journal ended exactly on a record boundary.
	DroppedBytes int
}

// Journal is an open, appendable sweep journal. Appends are safe for
// concurrent use by the sweep's worker pool.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	seq    int
	closed bool
}

// Create starts a fresh journal at path, truncating any previous one.
func Create(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: create: %w", err)
	}
	return &Journal{f: f, path: path}, nil
}

// Open replays an existing journal, recovers a torn tail by truncating
// to the last valid record, and returns the journal positioned for
// further appends. Interior corruption (a committed record that fails
// its checksum or frame) is a loud error: no Journal is returned.
func Open(path string) (*Journal, *Recovery, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: open: %w", err)
	}
	recs, dropped, err := parse(data)
	if err != nil {
		return nil, nil, err
	}
	if dropped > 0 {
		if err := os.Truncate(path, int64(len(data)-dropped)); err != nil {
			return nil, nil, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: reopen: %w", err)
	}
	return &Journal{f: f, path: path, seq: len(recs)}, &Recovery{Records: recs, DroppedBytes: dropped}, nil
}

// Read replays a journal without opening it for appends: the committed
// records, the torn-tail byte count, and any interior-corruption error.
func Read(path string) ([]Record, int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("journal: read: %w", err)
	}
	return parse(data)
}

// Append assigns the record its sequence number, frames and checksums
// it, and writes it. Terminal and sweep-level records are synced to
// stable storage before Append returns — a committed outcome must
// survive the very crash the journal exists for.
func (j *Journal) Append(rec Record) (int, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, fmt.Errorf("journal: append to closed journal %s", j.path)
	}
	rec.Seq = j.seq
	payload, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("journal: marshal record %d: %w", rec.Seq, err)
	}
	line := fmt.Sprintf("%s %08x %d %s\n", magic, crc32.ChecksumIEEE(payload), len(payload), payload)
	if _, err := j.f.WriteString(line); err != nil {
		return 0, fmt.Errorf("journal: append record %d: %w", rec.Seq, err)
	}
	if rec.State.Terminal() || rec.State == StateSweep || rec.State == StateAborted {
		if err := j.f.Sync(); err != nil {
			return 0, fmt.Errorf("journal: sync record %d: %w", rec.Seq, err)
		}
	}
	j.seq++
	return rec.Seq, nil
}

// Seq returns the next sequence number (= records committed so far).
func (j *Journal) Seq() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Path returns the journal file path.
func (j *Journal) Path() string { return j.path }

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return fmt.Errorf("journal: sync on close: %w", err)
	}
	return j.f.Close()
}

// parse validates the framed records in data. It returns the committed
// records and the byte count of a torn tail (trailing bytes after the
// last record terminator). Any complete record that fails validation
// is interior corruption and errors loudly.
func parse(data []byte) ([]Record, int, error) {
	var recs []Record
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// Torn tail: an append cut short mid-record. Everything
			// before it is intact; the fragment is recoverable loss.
			return recs, len(data) - off, nil
		}
		rec, err := parseLine(data[off : off+nl])
		if err != nil {
			return nil, 0, fmt.Errorf("journal: record %d (byte offset %d): %w", len(recs), off, err)
		}
		if rec.Seq != len(recs) {
			return nil, 0, fmt.Errorf("journal: record %d carries seq %d — journal spliced or records deleted", len(recs), rec.Seq)
		}
		recs = append(recs, rec)
		off += nl + 1
	}
	return recs, 0, nil
}

// parseLine validates one complete record line (without its newline).
func parseLine(line []byte) (Record, error) {
	var rec Record
	fields := bytes.SplitN(line, []byte{' '}, 4)
	if len(fields) != 4 || string(fields[0]) != magic {
		return rec, fmt.Errorf("bad frame %q", truncateForErr(line))
	}
	wantCRC, err := strconv.ParseUint(string(fields[1]), 16, 32)
	if err != nil {
		return rec, fmt.Errorf("bad checksum field: %v", err)
	}
	wantLen, err := strconv.Atoi(string(fields[2]))
	if err != nil {
		return rec, fmt.Errorf("bad length field: %v", err)
	}
	payload := fields[3]
	if len(payload) != wantLen {
		return rec, fmt.Errorf("payload is %d bytes, frame declares %d", len(payload), wantLen)
	}
	if got := crc32.ChecksumIEEE(payload); got != uint32(wantCRC) {
		return rec, fmt.Errorf("checksum mismatch: payload hashes %08x, frame declares %08x", got, uint32(wantCRC))
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, fmt.Errorf("payload not valid JSON: %v", err)
	}
	return rec, nil
}

func truncateForErr(b []byte) string {
	if len(b) > 40 {
		b = b[:40]
	}
	return string(b)
}

// Hash is the journal's content hash: SHA-256 over the serialized
// bytes, hex-encoded. Used for Record.ResultHash and the report
// digests built on top of it.
func Hash(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Corrupt injects a journal-file fault for crash and tamper testing,
// reusing the faultinject grammar and its seeded offset mixer so the
// same seed corrupts the same bytes every run:
//
//   - KindTorn truncates the file mid-record (a crash during append);
//     Open must recover by dropping the torn tail.
//   - KindFlip flips one bit inside a committed record; Open must fail
//     loudly (interior corruption is never silently absorbed).
func Corrupt(path string, kind faultinject.Kind, seed int64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("journal: corrupt: %w", err)
	}
	if len(data) == 0 {
		return fmt.Errorf("journal: corrupt: %s is empty", path)
	}
	switch kind {
	case faultinject.KindTorn:
		// Cut 1..80 bytes off the end, landing mid-record for any
		// plausible record size.
		cut := 1 + int(faultinject.Mix(seed, uint64(len(data)))%80)
		if cut >= len(data) {
			cut = len(data) - 1
		}
		return os.Truncate(path, int64(len(data)-cut))
	case faultinject.KindFlip:
		// Flip one bit inside a committed record's payload — the bytes
		// the CRC covers, so the tamper is always detectable. (A flip in
		// the frame prefix could land on a semantically equivalent
		// encoding, e.g. a hex digit's case, and change nothing.)
		starts := payloadRanges(data)
		if len(starts) == 0 {
			return fmt.Errorf("journal: corrupt: %s has no committed records to flip", path)
		}
		r := starts[faultinject.Mix(seed, uint64(len(data)))%uint64(len(starts))]
		pos := r[0] + int(faultinject.Mix(seed, uint64(r[0]), 1)%uint64(r[1]-r[0]))
		bit := faultinject.Mix(seed, uint64(pos), 2) % 8
		data[pos] ^= 1 << bit
		return os.WriteFile(path, data, 0o644)
	default:
		return fmt.Errorf("journal: corrupt: unsupported fault kind %q (want torn or flip)", kind)
	}
}

// payloadRanges returns the [start, end) byte range of each complete
// record line's payload (the region after the third frame field).
func payloadRanges(data []byte) [][2]int {
	var out [][2]int
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break
		}
		line := data[off : off+nl]
		spaces, start := 0, -1
		for i, b := range line {
			if b == ' ' {
				if spaces++; spaces == 3 {
					start = i + 1
					break
				}
			}
		}
		if start > 0 && start < len(line) {
			out = append(out, [2]int{off + start, off + nl})
		}
		off += nl + 1
	}
	return out
}

// TruncateRecords rewrites the journal at path to keep only its first
// n records — simulating a sweep killed after the nth append. With
// torn set, a prefix of record n is left dangling as a half-written
// tail (the crash landed mid-append). Returns the record count kept.
func TruncateRecords(path string, n int, torn bool) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("journal: truncate: %w", err)
	}
	recs, _, err := parse(data)
	if err != nil {
		return 0, err
	}
	if n > len(recs) {
		n = len(recs)
	}
	// Walk to the byte offset after record n-1.
	off := 0
	for i := 0; i < n; i++ {
		off += bytes.IndexByte(data[off:], '\n') + 1
	}
	keep := data[:off]
	if torn && n < len(recs) {
		next := bytes.IndexByte(data[off:], '\n')
		frag := next / 2
		if frag < 1 {
			frag = 1
		}
		keep = data[:off+frag]
	}
	if err := os.WriteFile(path, keep, 0o644); err != nil {
		return 0, fmt.Errorf("journal: truncate: %w", err)
	}
	return n, nil
}
