package core

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ghostbuster/internal/winapi"
)

// TestContainOffPreservesFailFast: without Contain, the first unit
// error aborts ScanAll with the historical error wrapping.
func TestContainOffPreservesFailFast(t *testing.T) {
	m := mustMachine(t)
	var calls atomic.Int32
	m.API.SetCallFault(func(api winapi.API, call *winapi.Call) error {
		if calls.Add(1) == 1 {
			return errors.New("injected API failure")
		}
		return nil
	})
	d := NewDetector(m)
	d.Advanced = true
	_, err := d.ScanAll()
	if err == nil {
		t.Fatal("fail-fast ScanAll returned nil error")
	}
	if !strings.Contains(err.Error(), "core: files scan:") {
		t.Errorf("error %q lacks historical wrapping", err)
	}
}

// TestContainDegradesFailedUnit: with Contain, the same failure yields
// four reports with exactly one degraded unit and zero findings.
func TestContainDegradesFailedUnit(t *testing.T) {
	m := mustMachine(t)
	var calls atomic.Int32
	m.API.SetCallFault(func(api winapi.API, call *winapi.Call) error {
		if calls.Add(1) == 1 {
			return errors.New("injected API failure")
		}
		return nil
	})
	d := NewDetector(m)
	d.Advanced = true
	d.Contain = true
	reports, err := d.ScanAll()
	if err != nil {
		t.Fatalf("contained ScanAll: %v", err)
	}
	if len(reports) != 4 {
		t.Fatalf("reports = %d, want 4", len(reports))
	}
	du := reports[0].DegradedUnits
	if len(du) != 1 || du[0].Unit != "files/high" {
		t.Fatalf("files degraded units = %+v, want one files/high entry", du)
	}
	if !strings.Contains(du[0].Fault, "injected API failure") {
		t.Errorf("degraded fault %q does not carry the cause", du[0].Fault)
	}
	if len(du[0].Compared) != 1 || du[0].Compared[0] != ViewRawMFT {
		t.Errorf("compared views = %v, want the surviving raw-MFT view", du[0].Compared)
	}
	for i, r := range reports {
		if len(r.Hidden) != 0 || len(r.Phantom) != 0 {
			t.Errorf("report %d has findings under containment: %+v %+v", i, r.Hidden, r.Phantom)
		}
		if i > 0 && r.Degraded() {
			t.Errorf("report %d degraded: %+v", i, r.DegradedUnits)
		}
	}
}

// TestContainedPanicBecomesDegradedUnit: a panicking scanner is held at
// the unit boundary and recorded, not propagated.
func TestContainedPanicBecomesDegradedUnit(t *testing.T) {
	m := mustMachine(t)
	var calls atomic.Int32
	m.API.SetCallFault(func(api winapi.API, call *winapi.Call) error {
		if calls.Add(1) == 1 {
			panic("injected scanner panic")
		}
		return nil
	})
	d := NewDetector(m)
	d.Advanced = true
	d.Contain = true
	reports, err := d.ScanAll()
	if err != nil {
		t.Fatalf("contained ScanAll: %v", err)
	}
	du := reports[0].DegradedUnits
	if len(du) != 1 || du[0].Unit != "files/high" {
		t.Fatalf("degraded units = %+v, want files/high", du)
	}
	if !strings.Contains(du[0].Fault, "panicked") || !strings.Contains(du[0].Fault, "injected scanner panic") {
		t.Errorf("degraded fault %q does not describe the panic", du[0].Fault)
	}
}

// TestDeadlineAbandonsUnstartedUnits: a tiny virtual-time budget lets
// the first unit run and abandons the rest, degrading every pair.
func TestDeadlineAbandonsUnstartedUnits(t *testing.T) {
	m := mustMachine(t)
	d := NewDetector(m)
	d.Advanced = true
	d.Contain = true
	d.Deadline = time.Nanosecond
	reports, err := d.ScanAll()
	if err != nil {
		t.Fatalf("contained ScanAll: %v", err)
	}
	for i, r := range reports {
		if !r.Degraded() {
			t.Errorf("report %d not degraded under a 1ns deadline", i)
			continue
		}
		for _, du := range r.DegradedUnits {
			if !strings.Contains(du.Fault, "deadline") {
				t.Errorf("report %d degraded by %q, want a deadline fault", i, du.Fault)
			}
		}
	}

	// Without Contain the deadline is a hard error.
	d2 := NewDetector(mustMachine(t))
	d2.Advanced = true
	d2.Deadline = time.Nanosecond
	if _, err := d2.ScanAll(); err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Errorf("uncontained deadline sweep: err = %v, want deadline error", err)
	}
}

// TestContainCleanSweepIdenticalReports: on a healthy machine Contain
// must not change a single report field.
func TestContainCleanSweepIdenticalReports(t *testing.T) {
	run := func(contain bool) []*Report {
		m := mustMachine(t)
		d := NewDetector(m)
		d.Advanced = true
		d.Contain = contain
		reports, err := d.ScanAll()
		if err != nil {
			t.Fatal(err)
		}
		return reports
	}
	strict, contained := run(false), run(true)
	for i := range strict {
		a, b := *strict[i], *contained[i]
		if a.Summary() != b.Summary() || a.Elapsed != b.Elapsed ||
			len(b.DegradedUnits) != 0 || len(a.Hidden) != len(b.Hidden) {
			t.Errorf("report %d differs under Contain: %+v vs %+v", i, a, b)
		}
	}
}

// TestCacheRefusesFaultEpochCrossings: a parse bracketed by a fault
// epoch change is served once but never memoized, so a warm cache can
// never replay a poisoned snapshot.
func TestCacheRefusesFaultEpochCrossings(t *testing.T) {
	m := mustMachine(t)
	c := NewScanCache(m)
	var epoch atomic.Uint64
	// Every read of the epoch advances it, so each parse sees a "fault"
	// fire mid-parse and must decline to memoize.
	m.FaultEpoch = func() uint64 { return epoch.Add(1) }
	if _, err := c.ScanFilesLow(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ScanFilesLow(); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("epoch-crossing parses: stats = %+v, want 0 hits / 2 misses", st)
	}
	// With a stable epoch the next parse memoizes and the one after hits.
	m.FaultEpoch = func() uint64 { return 42 }
	if _, err := c.ScanFilesLow(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ScanFilesLow(); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 3 {
		t.Fatalf("stable-epoch parses: stats = %+v, want 1 hit / 3 misses", st)
	}

	// Same guard on the ASEP side.
	m.FaultEpoch = func() uint64 { return epoch.Add(1) }
	if _, err := c.ScanASEPLow(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ScanASEPLow(); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 5 {
		t.Fatalf("ASEP epoch-crossing parses: stats = %+v, want 1 hit / 5 misses", st)
	}
}

// TestOnReportStreamsPartials: OnReport sees each report as it is
// assembled, in paper order.
func TestOnReportStreamsPartials(t *testing.T) {
	m := mustMachine(t)
	d := NewDetector(m)
	d.Advanced = true
	d.Contain = true
	var kinds []ResourceKind
	d.OnReport = func(r *Report) { kinds = append(kinds, r.Kind) }
	reports, err := d.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(kinds) != len(reports) {
		t.Fatalf("OnReport saw %d reports, ScanAll returned %d", len(kinds), len(reports))
	}
	want := []ResourceKind{KindFiles, KindASEPHooks, KindProcesses, KindModules}
	for i, k := range want {
		if kinds[i] != k {
			t.Errorf("OnReport order[%d] = %s, want %s", i, kinds[i], k)
		}
	}
}
