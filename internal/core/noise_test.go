package core

import "testing"

// Reboot-churn paths can reach a diff in Win32-denormalized form: mixed
// case from an alternate enumeration path, or a trailing dot/space the
// Win32 layer would strip. These variants name the same object as the
// canonical path, so the noise filters must classify them identically —
// the finding goes to Noise, never to Hidden, and never to both.

func classify(t *testing.T, filters []NoiseFilter, id string) (string, bool) {
	t.Helper()
	return matchNoise(filters, Finding{Kind: KindFiles, ID: id})
}

func TestNoiseFiltersTrailingDotVariants(t *testing.T) {
	filters := StandardNoiseFilters()
	cases := []struct {
		id, want string
	}{
		{`C:\WINDOWS\PREFETCH\APP-123.PF`, "OS prefetch"},
		{`C:\WINDOWS\PREFETCH\APP-123.PF.`, "OS prefetch"},
		{`C:\WINDOWS\PREFETCH\APP-123.PF. `, "OS prefetch"},
		{`C:\WINDOWS\SYSTEM32\LOGS\RT-0001.LOG.`, "service log file"},
		{`C:\DOWNLOADS\SETUP.EXE:ZONE.IDENTIFIER`, "Zone.Identifier stream"},
		{`C:\SYSTEM VOLUME INFORMATION\SR-CHANGE.LOG `, "System Restore change log"},
	}
	for _, c := range cases {
		reason, benign := classify(t, filters, c.id)
		if !benign {
			t.Errorf("%q not classified as noise, want %q", c.id, c.want)
			continue
		}
		if reason != c.want {
			t.Errorf("%q classified as %q, want %q", c.id, reason, c.want)
		}
	}
}

func TestNoiseFiltersCaseVariants(t *testing.T) {
	filters := StandardNoiseFilters()
	// IDs are canonically uppercase; a mixed-case variant of the same
	// path must classify identically rather than surfacing as Hidden.
	for _, id := range []string{
		`C:\Windows\Prefetch\App-123.pf`,
		`c:\windows\ccm\inv-0003.xml`,
		`C:\Documents and Settings\user\Local Settings\Temporary Internet Files\ad.gif`,
	} {
		if _, benign := classify(t, filters, id); !benign {
			t.Errorf("mixed-case churn path %q not classified as noise", id)
		}
	}
}

func TestNoiseVariantNotDoubleReported(t *testing.T) {
	// A churn file enumerated with a trailing dot on the truth side must
	// land in Noise (once), not in Hidden — and certainly not in both.
	high := newSnapshot(KindFiles, ViewWin32Inside)
	low := newSnapshot(KindFiles, ViewRawMFT)
	const id = `C:\WINDOWS\PREFETCH\NOTEPAD.EXE-AB12.PF.`
	low.add(Entry{ID: id, Display: id})
	r, err := Diff(high, low, DiffOptions{NoiseFilters: StandardNoiseFilters()})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) != 0 {
		t.Errorf("trailing-dot churn variant reported Hidden: %+v", r.Hidden)
	}
	if len(r.Noise) != 1 {
		t.Fatalf("noise findings = %d, want 1: %+v", len(r.Noise), r.Noise)
	}
	if r.Noise[0].ID != id {
		t.Errorf("noise finding ID rewritten to %q; reports must keep the raw ID", r.Noise[0].ID)
	}
	if r.Infected() {
		t.Error("filtered churn variant still marks the machine infected")
	}
}

func TestNoiseNormalizationDoesNotHideRealFindings(t *testing.T) {
	filters := StandardNoiseFilters()
	// Genuinely suspicious paths — including Win32 name tricks outside
	// the churn directories — must stay un-filtered.
	for _, id := range []string{
		`C:\WINDOWS\SYSTEM32\WINCFG.`,
		`C:\WINDOWS\SYSTEM32\UPDATE `,
		`C:\WINDOWS\SYSTEM32\HXDEF.EXE`,
	} {
		if reason, benign := classify(t, filters, id); benign {
			t.Errorf("%q wrongly classified as noise (%s)", id, reason)
		}
	}
}
