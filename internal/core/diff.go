package core

import (
	"fmt"
	"sort"
	"time"
)

// DefaultMassHidingThreshold is the hidden-entry count above which a
// report flags a mass-hiding anomaly.
const DefaultMassHidingThreshold = 100

// DiffOptions tunes the cross-view comparison.
type DiffOptions struct {
	// NoiseFilters classify hidden-side findings as known-benign churn.
	NoiseFilters []NoiseFilter
	// MassHidingThreshold overrides DefaultMassHidingThreshold; zero
	// keeps the default, negative disables the anomaly check.
	MassHidingThreshold int
}

// Diff compares a high-level (possibly lied-to) snapshot with a
// low-level or outside (truth) snapshot of the same resource kind.
// Entries present only in the truth view are hidden resources.
func Diff(high, low *Snapshot, opts DiffOptions) (*Report, error) {
	if high.Kind != low.Kind {
		return nil, fmt.Errorf("core: diffing %v against %v", high.Kind, low.Kind)
	}
	threshold := opts.MassHidingThreshold
	if threshold == 0 {
		threshold = DefaultMassHidingThreshold
	}
	r := &Report{
		Kind: high.Kind, HighView: high.View, LowView: low.View,
		HighSkipped: high.Skipped, LowSkipped: low.Skipped,
	}
	for id, e := range low.Entries {
		if _, visible := high.Entries[id]; visible {
			continue
		}
		f := Finding{Kind: low.Kind, ID: id, Display: e.Display, Detail: e.Detail}
		if reason, benign := matchNoise(opts.NoiseFilters, f); benign {
			f.Noise = true
			f.Reason = reason
			r.Noise = append(r.Noise, f)
			continue
		}
		r.Hidden = append(r.Hidden, f)
	}
	for id, e := range high.Entries {
		if _, present := low.Entries[id]; !present {
			r.Phantom = append(r.Phantom, Finding{Kind: high.Kind, ID: id, Display: e.Display, Detail: e.Detail})
		}
	}
	sortFindings(r.Hidden)
	sortFindings(r.Noise)
	sortFindings(r.Phantom)
	r.Elapsed = high.Elapsed + low.Elapsed + time.Duration(high.Len()+low.Len())*costDiffPerEntry
	if threshold > 0 && len(r.Hidden) > threshold {
		r.MassHiding = &MassHidingAnomaly{HiddenCount: len(r.Hidden), Threshold: threshold}
	}
	return r, nil
}

// SealedDiff is Diff plus a digest seal — the form every emission path
// (detector scan methods, outside-the-box checks) uses. Diff itself
// stays allocation-lean for callers that diff snapshots in a loop.
func SealedDiff(high, low *Snapshot, opts DiffOptions) (*Report, error) {
	r, err := Diff(high, low, opts)
	if err != nil {
		return nil, err
	}
	r.Seal()
	return r, nil
}

func sortFindings(fs []Finding) {
	if len(fs) < 2 {
		return // skip the sort.Slice closure allocation for the common clean case
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i].ID < fs[j].ID })
}
