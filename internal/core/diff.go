package core

import (
	"fmt"
	"slices"
	"time"
)

// DefaultMassHidingThreshold is the hidden-entry count above which a
// report flags a mass-hiding anomaly.
const DefaultMassHidingThreshold = 100

// DiffOptions tunes the cross-view comparison.
type DiffOptions struct {
	// NoiseFilters classify hidden-side findings as known-benign churn.
	NoiseFilters []NoiseFilter
	// MassHidingThreshold overrides DefaultMassHidingThreshold; zero
	// keeps the default, negative disables the anomaly check.
	MassHidingThreshold int
}

// Diff compares a high-level (possibly lied-to) snapshot with a
// low-level or outside (truth) snapshot of the same resource kind.
// Entries present only in the truth view are hidden resources.
//
// This is the map-probe engine, kept for map-backed snapshots built by
// outside-the-box adapters; the detector hot path runs DiffColumnar,
// which produces byte-identical reports (a property the differential
// suite in internal/ghostfuzz enforces over the whole corpus).
func Diff(high, low *Snapshot, opts DiffOptions) (*Report, error) {
	if high.Kind != low.Kind {
		return nil, fmt.Errorf("core: diffing %v against %v", high.Kind, low.Kind)
	}
	r := &Report{
		Kind: high.Kind, HighView: high.View, LowView: low.View,
		HighSkipped: high.Skipped, LowSkipped: low.Skipped,
	}
	for id, e := range low.Entries {
		if _, visible := high.Entries[id]; visible {
			continue
		}
		classifyHidden(r, Finding{Kind: low.Kind, ID: id, Display: e.Display, Detail: e.Detail}, opts)
	}
	for id, e := range high.Entries {
		if _, present := low.Entries[id]; !present {
			r.Phantom = append(r.Phantom, Finding{Kind: high.Kind, ID: id, Display: e.Display, Detail: e.Detail})
		}
	}
	sortFindings(r.Hidden)
	sortFindings(r.Noise)
	sortFindings(r.Phantom)
	finishReport(r, high.Elapsed+low.Elapsed, high.Len()+low.Len(), opts)
	return r, nil
}

// DiffColumnar is the columnar diff engine: a sorted merge-join over
// the two snapshots' interned-ID columns. Both snapshots must index the
// same InternTable (every snapshot one detector builds does); snapshots
// from different tables fall back to the map engine via the adapter,
// since their symbol orders are not comparable.
func DiffColumnar(high, low *ColumnarSnapshot, opts DiffOptions) (*Report, error) {
	if high.Kind != low.Kind {
		return nil, fmt.Errorf("core: diffing %v against %v", high.Kind, low.Kind)
	}
	if high.table != low.table {
		return Diff(high.Snapshot(), low.Snapshot(), opts)
	}
	r := &Report{}
	diffColumnarInto(r, high, low, opts)
	return r, nil
}

// DiffColumnarInto is DiffColumnar reusing the caller's report: the
// finding slices keep their backing arrays, so a warm incremental diff
// of an unchanged volume — the every-sweep fleet case — allocates
// nothing (pinned by TestWarmColumnarDiffZeroAlloc). The report must
// not be retained elsewhere; callers that publish reports use
// DiffColumnar.
func DiffColumnarInto(r *Report, high, low *ColumnarSnapshot, opts DiffOptions) error {
	if high.Kind != low.Kind {
		return fmt.Errorf("core: diffing %v against %v", high.Kind, low.Kind)
	}
	if high.table != low.table {
		return fmt.Errorf("core: diffing snapshots from different intern tables")
	}
	hidden, noise, phantom := r.Hidden[:0], r.Noise[:0], r.Phantom[:0]
	*r = Report{Hidden: hidden, Noise: noise, Phantom: phantom}
	diffColumnarInto(r, high, low, opts)
	if len(r.Hidden) == 0 {
		r.Hidden = nil
	}
	if len(r.Noise) == 0 {
		r.Noise = nil
	}
	if len(r.Phantom) == 0 {
		r.Phantom = nil
	}
	return nil
}

// diffColumnarInto merge-joins into r, which carries (possibly
// preallocated, length-zero) finding slices. Findings surface in symbol
// order and are re-sorted to canonical ID order afterwards, so the
// output is byte-identical to the map engine's.
func diffColumnarInto(r *Report, high, low *ColumnarSnapshot, opts DiffOptions) {
	r.Kind = high.Kind
	r.HighView = high.View
	r.LowView = low.View
	r.HighSkipped = high.Skipped
	r.LowSkipped = low.Skipped
	strs := high.table.view()
	i, j := 0, 0
	for i < len(high.ids) && j < len(low.ids) {
		hs, ls := high.ids[i], low.ids[j]
		switch {
		case hs == ls:
			i++
			j++
		case hs < ls:
			r.Phantom = append(r.Phantom, Finding{Kind: high.Kind, ID: strs[hs], Display: high.displays[i], Detail: high.details[i]})
			i++
		default:
			classifyHidden(r, Finding{Kind: low.Kind, ID: strs[ls], Display: low.displays[j], Detail: low.details[j]}, opts)
			j++
		}
	}
	for ; i < len(high.ids); i++ {
		sym := high.ids[i]
		r.Phantom = append(r.Phantom, Finding{Kind: high.Kind, ID: strs[sym], Display: high.displays[i], Detail: high.details[i]})
	}
	for ; j < len(low.ids); j++ {
		sym := low.ids[j]
		classifyHidden(r, Finding{Kind: low.Kind, ID: strs[sym], Display: low.displays[j], Detail: low.details[j]}, opts)
	}
	sortFindings(r.Hidden)
	sortFindings(r.Noise)
	sortFindings(r.Phantom)
	finishReport(r, high.Elapsed+low.Elapsed, high.Len()+low.Len(), opts)
}

// classifyHidden routes one truth-only finding to Hidden or Noise.
func classifyHidden(r *Report, f Finding, opts DiffOptions) {
	if reason, benign := matchNoise(opts.NoiseFilters, f); benign {
		f.Noise = true
		f.Reason = reason
		r.Noise = append(r.Noise, f)
		return
	}
	r.Hidden = append(r.Hidden, f)
}

// finishReport applies the shared tail of both diff engines: the
// virtual-time charge and the mass-hiding anomaly check.
func finishReport(r *Report, scanElapsed time.Duration, entries int, opts DiffOptions) {
	threshold := opts.MassHidingThreshold
	if threshold == 0 {
		threshold = DefaultMassHidingThreshold
	}
	r.Elapsed = scanElapsed + time.Duration(entries)*costDiffPerEntry
	if threshold > 0 && len(r.Hidden) > threshold {
		r.MassHiding = &MassHidingAnomaly{HiddenCount: len(r.Hidden), Threshold: threshold}
	}
}

// SealedDiff is Diff plus a digest seal — the form every emission path
// (detector scan methods, outside-the-box checks) uses. Diff itself
// stays allocation-lean for callers that diff snapshots in a loop.
func SealedDiff(high, low *Snapshot, opts DiffOptions) (*Report, error) {
	r, err := Diff(high, low, opts)
	if err != nil {
		return nil, err
	}
	r.Seal()
	return r, nil
}

// sealedDiffColumnar is SealedDiff for the columnar engine.
func sealedDiffColumnar(high, low *ColumnarSnapshot, opts DiffOptions) (*Report, error) {
	r, err := DiffColumnar(high, low, opts)
	if err != nil {
		return nil, err
	}
	r.Seal()
	return r, nil
}

func sortFindings(fs []Finding) {
	// slices.SortFunc stays closure-allocation-free (unlike the old
	// sort.Slice form), so the common clean case costs nothing.
	slices.SortFunc(fs, func(a, b Finding) int {
		switch {
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		default:
			return 0
		}
	})
}
