package core

import (
	"slices"
	"sync"
	"time"
)

// This file implements the columnar snapshot engine: the allocation-lean
// representation the detector hot path runs on. A snapshot is stored as
// parallel columns (interned-ID symbols, display strings, detail
// strings) sorted by symbol, so the cross-view diff is a sorted
// merge-join over two symbol columns instead of two map probes per
// entry, and a warm incremental diff of an unchanged volume allocates
// nothing. The map-backed Snapshot survives as a thin adapter for
// outside-the-box callers and serialization; see DESIGN.md §14.

// Sym is an interned-string symbol: an index into its InternTable.
// Two strings interned in the same table are equal iff their symbols
// are equal, and a symbol resolves back to its string without
// allocating.
type Sym uint32

// InternTable is an append-only string-interning table. One table is
// shared by every snapshot a detector builds (high and low sides, all
// sweeps), so the entry-ID strings of a long-running sweep loop are
// allocated once, the first time each identity is seen, and every warm
// rebuild reuses them. Strings are never evicted: the table is a cache
// whose lifetime is its detector's, and its size is bounded by the
// number of distinct identities the host has ever exposed.
//
// The table is safe for concurrent interning (parallel sweep lanes
// build their snapshots at the same time); resolution via Str is a
// plain slice index on an immutable prefix.
type InternTable struct {
	mu   sync.Mutex
	syms map[string]Sym
	strs []string
}

// NewInternTable returns an empty table.
func NewInternTable() *InternTable {
	return &InternTable{syms: make(map[string]Sym)}
}

// NewInternTableHint returns an empty table pre-sized for roughly hint
// distinct strings, sparing a cold bulk build the incremental map
// rehashes. Symbols and behavior are identical to NewInternTable.
func NewInternTableHint(hint int) *InternTable {
	return &InternTable{syms: make(map[string]Sym, hint), strs: make([]string, 0, hint)}
}

// Intern returns the symbol for s, assigning the next free symbol the
// first time s is seen. The string is retained.
func (t *InternTable) Intern(s string) Sym {
	t.mu.Lock()
	sym, ok := t.syms[s]
	if !ok {
		sym = Sym(len(t.strs))
		t.strs = append(t.strs, s)
		t.syms[s] = sym
	}
	t.mu.Unlock()
	return sym
}

// InternBytes is Intern for a scratch byte buffer. The common warm-path
// case (the identity was interned by an earlier sweep) does not
// allocate: the map lookup runs on the bytes directly, and only a
// first-seen identity pays the []byte -> string copy.
func (t *InternTable) InternBytes(b []byte) Sym {
	t.mu.Lock()
	sym, ok := t.syms[string(b)] // no alloc: the compiler elides the conversion for lookups
	if !ok {
		s := string(b)
		sym = Sym(len(t.strs))
		t.strs = append(t.strs, s)
		t.syms[s] = sym
	}
	t.mu.Unlock()
	return sym
}

// InternStrBytes interns a scratch buffer and returns the canonical
// retained string — the warm path returns the existing string without
// allocating. Used for display/detail columns, which store strings
// rather than symbols.
func (t *InternTable) InternStrBytes(b []byte) string {
	return t.Str(t.InternBytes(b))
}

// Lookup returns the symbol for s if it was ever interned.
func (t *InternTable) Lookup(s string) (Sym, bool) {
	t.mu.Lock()
	sym, ok := t.syms[s]
	t.mu.Unlock()
	return sym, ok
}

// Str resolves a symbol to its string.
func (t *InternTable) Str(sym Sym) string {
	t.mu.Lock()
	s := t.strs[sym]
	t.mu.Unlock()
	return s
}

// Len returns the number of distinct strings interned.
func (t *InternTable) Len() int {
	t.mu.Lock()
	n := len(t.strs)
	t.mu.Unlock()
	return n
}

// view returns the current resolved-string column under the lock. The
// returned slice header is a stable prefix (strs is append-only), so
// callers resolve any symbol interned before the call with plain
// indexing and no further locking — the diff merge-join and the
// snapshot adapter take one view per operation instead of one lock per
// entry.
func (t *InternTable) view() []string {
	t.mu.Lock()
	v := t.strs
	t.mu.Unlock()
	return v
}

// ColumnarSnapshot is the columnar form of one scan result: parallel
// columns sorted by interned-ID symbol. It is immutable after Build and
// safe to share across sweeps (the cache hands the same columns to
// every warm hit).
type ColumnarSnapshot struct {
	Kind    ResourceKind
	View    View
	Taken   time.Duration // virtual time when the scan completed
	Elapsed time.Duration // virtual time the scan consumed
	// Skipped counts scan targets the pass could not read; see
	// Snapshot.Skipped.
	Skipped int

	table    *InternTable
	ids      []Sym // sorted ascending; unique after Build's dedupe
	displays []string
	details  []string
}

// Len returns the entry count.
func (c *ColumnarSnapshot) Len() int { return len(c.ids) }

// Table returns the interning table the ID column indexes.
func (c *ColumnarSnapshot) Table() *InternTable { return c.table }

// EntryAt materializes entry i (in symbol order).
func (c *ColumnarSnapshot) EntryAt(i int) Entry {
	return Entry{ID: c.table.Str(c.ids[i]), Display: c.displays[i], Detail: c.details[i]}
}

// Lookup finds an entry by its canonical ID.
func (c *ColumnarSnapshot) Lookup(id string) (Entry, bool) {
	sym, ok := c.table.Lookup(id)
	if !ok {
		return Entry{}, false
	}
	i, ok := slices.BinarySearch(c.ids, sym)
	if !ok {
		return Entry{}, false
	}
	return c.EntryAt(i), true
}

// Snapshot materializes the map-backed adapter form. External consumers
// (outside-the-box tools, serialization, tests) see exactly the
// Snapshot the map engine used to build; the detector hot path never
// calls this.
func (c *ColumnarSnapshot) Snapshot() *Snapshot {
	s := &Snapshot{
		Kind: c.Kind, View: c.View, Taken: c.Taken, Elapsed: c.Elapsed, Skipped: c.Skipped,
		Entries: make(map[string]Entry, len(c.ids)),
	}
	strs := c.table.view()
	for i, sym := range c.ids {
		s.Entries[strs[sym]] = Entry{ID: strs[sym], Display: c.displays[i], Detail: c.details[i]}
	}
	return s
}

// SnapshotColumnar converts a map-backed Snapshot into columnar form
// over the given table. Used by compatibility paths and the
// differential tests that pit the two diff engines against each other.
func SnapshotColumnar(s *Snapshot, t *InternTable) *ColumnarSnapshot {
	b := NewColumnarBuilder(t, s.Kind, s.View, len(s.Entries))
	for _, e := range s.Entries {
		b.Add(e.ID, e.Display, e.Detail)
	}
	c := b.Build()
	c.Taken = s.Taken
	c.Elapsed = s.Elapsed
	c.Skipped = s.Skipped
	return c
}

// ColumnarBuilder accumulates rows in scan order and sorts them into a
// ColumnarSnapshot. Duplicate IDs keep the last-added row, matching the
// map engine's overwrite semantics.
type ColumnarBuilder struct {
	table    *InternTable
	kind     ResourceKind
	view     View
	ids      []Sym
	displays []string
	details  []string
}

// NewColumnarBuilder starts a snapshot of the given kind/view with a
// capacity hint.
func NewColumnarBuilder(t *InternTable, kind ResourceKind, view View, hint int) *ColumnarBuilder {
	return &ColumnarBuilder{
		table:    t,
		kind:     kind,
		view:     view,
		ids:      make([]Sym, 0, hint),
		displays: make([]string, 0, hint),
		details:  make([]string, 0, hint),
	}
}

// Table returns the builder's interning table.
func (b *ColumnarBuilder) Table() *InternTable { return b.table }

// Add appends one row, interning the ID.
func (b *ColumnarBuilder) Add(id, display, detail string) {
	b.AddRow(b.table.Intern(id), display, detail)
}

// AddRow appends one row with a pre-interned ID.
func (b *ColumnarBuilder) AddRow(id Sym, display, detail string) {
	b.ids = append(b.ids, id)
	b.displays = append(b.displays, display)
	b.details = append(b.details, detail)
}

// Build sorts the accumulated rows by ID symbol and collapses duplicate
// IDs (last added wins). The sort runs on packed (sym, insertion-index)
// keys — integer compares, no per-element closure state — and the three
// columns are gathered once through the resulting permutation.
func (b *ColumnarBuilder) Build() *ColumnarSnapshot {
	n := len(b.ids)
	c := &ColumnarSnapshot{Kind: b.kind, View: b.view, table: b.table}
	if n == 0 {
		return c
	}
	// Packed key: symbol in the high 32 bits, insertion index in the
	// low 32. Ascending order is (symbol, insertion order), which makes
	// the plain unstable sort stable and puts the last-added duplicate
	// at the end of its run.
	keys := make([]uint64, n)
	for i, sym := range b.ids {
		keys[i] = uint64(sym)<<32 | uint64(uint32(i))
	}
	slices.Sort(keys)
	c.ids = make([]Sym, 0, n)
	c.displays = make([]string, 0, n)
	c.details = make([]string, 0, n)
	for i, k := range keys {
		sym := Sym(k >> 32)
		if i+1 < n && Sym(keys[i+1]>>32) == sym {
			continue // a later add of the same ID wins
		}
		src := int(uint32(k))
		c.ids = append(c.ids, sym)
		c.displays = append(c.displays, b.displays[src])
		c.details = append(c.details, b.details[src])
	}
	return c
}
