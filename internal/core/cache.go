package core

import (
	"strconv"
	"strings"
	"time"

	"ghostbuster/internal/machine"
	"ghostbuster/internal/ntfs"
	"ghostbuster/internal/vtime"
)

// Cache-hit verify costs for the virtual-time model. A hit does not
// reread the MFT or the hive files; it rereads the boot sector / hive
// headers and the mutation generation counters and compares them to the
// cached keys. That is a couple of random reads plus a handful of
// comparisons, charged as a flat verify pass per source (see DESIGN.md,
// "Incremental cross-view scanning").
const (
	costCacheVerifyDisk = 2 * time.Millisecond
	costCacheVerifyHive = 500 * time.Microsecond
)

// ScanCache memoizes the parsed low-level snapshots of one machine's
// byte-level truth sources, keyed on their mutation generations. The
// sweep loop of a fleet deployment runs daily on mostly idle desktops;
// when nothing changed on disk since the last sweep, re-parsing the
// full MFT image and re-copying every Registry hive is pure waste. The
// cache turns those repeat parses into generation checks.
//
// Safety argument: every mutation path to the underlying bytes bumps a
// generation counter — ntfs.Volume mutators (create/write/remove/ADS
// ops), hive commits, Registry mount-table changes, and the
// machine.WriteDeviceBytes hook for direct device writes. A generation
// mismatch always forces a full reparse, so a file or ASEP hook hidden
// after a cached sweep is re-discovered on the next sweep; a stale
// snapshot can never mask it. The cache only ever serves the low-level
// (truth) side: high-level scans go through the hookable API chain and
// are re-run every sweep, so newly installed interception is still
// caught even when the disk bytes are unchanged.
//
// A ScanCache is owned by a single machine and, like the machine, is
// not safe for concurrent use.
type ScanCache struct {
	m *machine.Machine

	files    *Snapshot
	filesGen uint64

	aseps    *Snapshot
	asepsKey string

	hits, misses int
}

// NewScanCache returns an empty cache bound to m.
func NewScanCache(m *machine.Machine) *ScanCache { return &ScanCache{m: m} }

// Stats reports cache effectiveness counters.
type CacheStats struct {
	Hits, Misses int
}

// Stats returns hit/miss counters accumulated since construction.
func (c *ScanCache) Stats() CacheStats { return CacheStats{Hits: c.hits, Misses: c.misses} }

// Invalidate drops all cached snapshots; the next scans reparse fully.
func (c *ScanCache) Invalidate() {
	c.files = nil
	c.aseps = nil
}

// hitSnapshot stamps a cached snapshot for the current virtual time. The
// entry map is shared with the cached copy — snapshots are never mutated
// after construction, only diffed.
func hitSnapshot(cached *Snapshot, clock *vtime.Clock, elapsed time.Duration) *Snapshot {
	snap := *cached
	snap.Taken = clock.Now()
	snap.Elapsed = elapsed
	return &snap
}

// ScanFilesLow is the cached variant of core.ScanFilesLow: it returns
// the memoized raw-MFT snapshot when the volume generation is unchanged,
// charging only the verify pass.
func (c *ScanCache) ScanFilesLow() (*Snapshot, error) {
	gen := c.m.Disk.Generation()
	if c.files != nil && c.filesGen == gen {
		c.hits++
		sw := vtime.NewStopwatch(c.m.Clock)
		c.m.Clock.ChargeBytes(ntfs.BytesPerSector, diskBytesPerSecond(c.m.Profile))
		c.m.Clock.ChargeOps(1, costCacheVerifyDisk)
		return hitSnapshot(c.files, c.m.Clock, sw.Elapsed()), nil
	}
	c.misses++
	snap, err := ScanFilesLow(c.m)
	if err != nil {
		return nil, err
	}
	c.files = snap
	c.filesGen = gen
	return snap, nil
}

// ScanASEPLow is the cached variant of core.ScanASEPLow, keyed on the
// Registry mount table and every mounted hive's generation.
func (c *ScanCache) ScanASEPLow() (*Snapshot, error) {
	key := regCacheKey(c.m)
	if c.aseps != nil && c.asepsKey == key {
		c.hits++
		sw := vtime.NewStopwatch(c.m.Clock)
		c.m.Clock.ChargeOps(int64(len(c.m.Reg.Roots())), costCacheVerifyHive)
		return hitSnapshot(c.aseps, c.m.Clock, sw.Elapsed()), nil
	}
	c.misses++
	snap, err := ScanASEPLow(c.m)
	if err != nil {
		return nil, err
	}
	c.aseps = snap
	c.asepsKey = key
	return snap, nil
}

// regCacheKey folds the mount-table generation and each mounted hive's
// root and generation into one comparable key. A plain sum would be
// ambiguous (unmounting a gen-1 hive bumps the mount generation by one,
// netting zero); the explicit tuple is collision-free.
func regCacheKey(m *machine.Machine) string {
	var b strings.Builder
	b.WriteString(strconv.FormatUint(m.Reg.Generation(), 10))
	for _, root := range m.Reg.Roots() {
		h, ok := m.Reg.HiveAt(root)
		if !ok {
			continue
		}
		b.WriteByte('|')
		b.WriteString(root)
		b.WriteByte('=')
		b.WriteString(strconv.FormatUint(h.Generation(), 10))
	}
	return b.String()
}
