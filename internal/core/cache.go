package core

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ghostbuster/internal/machine"
	"ghostbuster/internal/ntfs"
	"ghostbuster/internal/vtime"
)

// Cache-hit verify costs for the virtual-time model. A hit does not
// reread the MFT or the hive files; it rereads the boot sector / hive
// headers and the mutation generation counters and compares them to the
// cached keys. That is a couple of random reads plus a handful of
// comparisons, charged as a flat verify pass per source (see DESIGN.md,
// "Incremental cross-view scanning").
const (
	costCacheVerifyDisk = 2 * time.Millisecond
	costCacheVerifyHive = 500 * time.Microsecond
)

// ScanCache memoizes the parsed low-level snapshots of one machine's
// byte-level truth sources, keyed on their mutation generations. The
// sweep loop of a fleet deployment runs daily on mostly idle desktops;
// when nothing changed on disk since the last sweep, re-parsing the
// full MFT image and re-copying every Registry hive is pure waste. The
// cache turns those repeat parses into generation checks.
//
// Safety argument: every mutation path to the underlying bytes bumps a
// generation counter — ntfs.Volume mutators (create/write/remove/ADS
// ops), hive commits, Registry mount-table changes, and the
// machine.WriteDeviceBytes hook for direct device writes. A generation
// mismatch always forces a full reparse, so a file or ASEP hook hidden
// after a cached sweep is re-discovered on the next sweep; a stale
// snapshot can never mask it. The cache only ever serves the low-level
// (truth) side: high-level scans go through the hookable API chain and
// are re-run every sweep, so newly installed interception is still
// caught even when the disk bytes are unchanged.
//
// A ScanCache is owned by a single machine and is safe for concurrent
// use: a parallel sweep's file and ASEP lanes each take their own lock,
// so the two truth sources never serialize against each other. The
// generation key is always read before the parse, so a mutation racing
// a miss can only make the cached copy stale-keyed (forcing a reparse
// next sweep), never mask a change.
//
// Ownership note for the columnar engine: cached snapshots index the
// cache's own intern table (which the owning detector shares via
// Detector.table), and everything a columnar snapshot references is
// owned memory — the raw parses copy-on-retain at this boundary, so a
// cached snapshot never borrows from the live device buffer it was
// parsed from.
type ScanCache struct {
	m      *machine.Machine
	intern *InternTable

	filesMu  sync.Mutex
	files    *ColumnarSnapshot
	filesGen uint64

	asepsMu  sync.Mutex
	aseps    *ColumnarSnapshot
	asepsKey string

	remMu  sync.Mutex
	rem    *ColumnarSnapshot
	remKey string

	hits, misses atomic.Int64
}

// NewScanCache returns an empty cache bound to m.
func NewScanCache(m *machine.Machine) *ScanCache {
	return &ScanCache{m: m, intern: NewInternTable()}
}

// table returns the cache's interning table; detectors with a cache
// attached build all their snapshots over it.
func (c *ScanCache) table() *InternTable { return c.intern }

// Stats reports cache effectiveness counters.
type CacheStats struct {
	Hits, Misses int
}

// Stats returns hit/miss counters accumulated since construction.
func (c *ScanCache) Stats() CacheStats {
	return CacheStats{Hits: int(c.hits.Load()), Misses: int(c.misses.Load())}
}

// Invalidate drops all cached snapshots; the next scans reparse fully.
// The intern table is retained: identities seen before the invalidation
// keep their symbols, which is what makes the post-invalidation reparse
// cheap.
func (c *ScanCache) Invalidate() {
	c.filesMu.Lock()
	c.files = nil
	c.filesMu.Unlock()
	c.asepsMu.Lock()
	c.aseps = nil
	c.asepsMu.Unlock()
	c.remMu.Lock()
	c.rem = nil
	c.remMu.Unlock()
}

// hitColumnar stamps a cached snapshot for the current virtual time. The
// columns are shared with the cached copy — snapshots are never mutated
// after Build, only diffed.
func hitColumnar(cached *ColumnarSnapshot, clock *vtime.Clock, elapsed time.Duration) *ColumnarSnapshot {
	snap := *cached
	snap.Taken = clock.Now()
	snap.Elapsed = elapsed
	return &snap
}

// ScanFilesLow is the cached variant of core.ScanFilesLow: it returns
// the memoized raw-MFT snapshot when the volume generation is unchanged,
// charging only the verify pass.
func (c *ScanCache) ScanFilesLow() (*Snapshot, error) {
	snap, err := c.scanFilesLowOn(c.m.Clock, 1)
	if err != nil {
		return nil, err
	}
	return snap.Snapshot(), nil
}

func (c *ScanCache) scanFilesLowOn(clk *vtime.Clock, workers int) (*ColumnarSnapshot, error) {
	c.filesMu.Lock()
	defer c.filesMu.Unlock()
	gen := c.m.Disk.Generation()
	if c.files != nil && c.filesGen == gen {
		c.hits.Add(1)
		sw := vtime.NewStopwatch(clk)
		clk.ChargeBytes(ntfs.BytesPerSector, diskBytesPerSecond(c.m.Profile))
		clk.ChargeOps(1, costCacheVerifyDisk)
		return hitColumnar(c.files, clk, sw.Elapsed()), nil
	}
	c.misses.Add(1)
	epoch := c.faultEpoch()
	snap, err := scanFilesLowC(c.m, clk, workers, c.intern)
	if err != nil {
		return nil, err
	}
	if c.faultEpoch() != epoch {
		// A fault fired during the parse: the snapshot may describe
		// damaged bytes. Serve it to this sweep (the report carries the
		// degradation) but never memoize it — a warm cache must not
		// replay a poisoned parse after the fault clears.
		return snap, nil
	}
	c.files = snap
	c.filesGen = gen
	return snap, nil
}

// faultEpoch samples the machine's fault-injection epoch (zero when no
// fault layer is armed).
func (c *ScanCache) faultEpoch() uint64 {
	if fe := c.m.FaultEpoch; fe != nil {
		return fe()
	}
	return 0
}

// ScanASEPLow is the cached variant of core.ScanASEPLow, keyed on the
// Registry mount table and every mounted hive's generation.
func (c *ScanCache) ScanASEPLow() (*Snapshot, error) {
	snap, err := c.scanASEPLowOn(c.m.Clock)
	if err != nil {
		return nil, err
	}
	return snap.Snapshot(), nil
}

func (c *ScanCache) scanASEPLowOn(clk *vtime.Clock) (*ColumnarSnapshot, error) {
	c.asepsMu.Lock()
	defer c.asepsMu.Unlock()
	key := regCacheKey(c.m)
	if c.aseps != nil && c.asepsKey == key {
		c.hits.Add(1)
		sw := vtime.NewStopwatch(clk)
		clk.ChargeOps(int64(len(c.m.Reg.Roots())), costCacheVerifyHive)
		return hitColumnar(c.aseps, clk, sw.Elapsed()), nil
	}
	c.misses.Add(1)
	epoch := c.faultEpoch()
	snap, err := scanASEPLowC(c.m, clk, c.intern)
	if err != nil {
		return nil, err
	}
	if c.faultEpoch() != epoch {
		// See scanFilesLowOn: a parse that raced a fired fault is served
		// once but never memoized.
		return snap, nil
	}
	c.aseps = snap
	c.asepsKey = key
	return snap, nil
}

// scanRemovableLowOn is the cached removable truth scan, keyed on the
// machine's removable key (hot-plug event count + volume generation).
// Attaching, detaching, or writing the stick all move the key, so a
// cached parse of the previous stick can never stand in for the current
// one.
func (c *ScanCache) scanRemovableLowOn(clk *vtime.Clock) (*ColumnarSnapshot, error) {
	c.remMu.Lock()
	defer c.remMu.Unlock()
	key := c.m.RemovableKey()
	if c.rem != nil && c.remKey == key {
		c.hits.Add(1)
		sw := vtime.NewStopwatch(clk)
		clk.ChargeBytes(ntfs.BytesPerSector, diskBytesPerSecond(c.m.Profile))
		clk.ChargeOps(1, costCacheVerifyDisk)
		return hitColumnar(c.rem, clk, sw.Elapsed()), nil
	}
	c.misses.Add(1)
	epoch := c.faultEpoch()
	snap, err := scanRemovableLowC(c.m, clk, c.intern)
	if err != nil {
		return nil, err
	}
	if c.faultEpoch() != epoch {
		// See scanFilesLowOn: a parse that raced a fired fault is served
		// once but never memoized.
		return snap, nil
	}
	c.rem = snap
	c.remKey = key
	return snap, nil
}

// GenerationKey folds a machine's byte-level substrate generations into
// one comparable key: the disk volume's mutation generation, the
// registry mount-table/hive key the ASEP cache is keyed on, and the
// removable drive's hot-plug key. Anything that could change what the
// truth-side parses see moves the key, and nothing else does — the
// resident daemon polls it to decide whether a registered host needs an
// incremental re-sweep or is quiet. Reading the key costs a few counter
// loads, no parsing.
func GenerationKey(m *machine.Machine) string {
	return strconv.FormatUint(m.Disk.Generation(), 10) + "/" + regCacheKey(m) + "/rem=" + m.RemovableKey()
}

// regCacheKey folds the mount-table generation and each mounted hive's
// root and generation into one comparable key. A plain sum would be
// ambiguous (unmounting a gen-1 hive bumps the mount generation by one,
// netting zero); the explicit tuple is collision-free.
func regCacheKey(m *machine.Machine) string {
	var b strings.Builder
	b.WriteString(strconv.FormatUint(m.Reg.Generation(), 10))
	for _, root := range m.Reg.Roots() {
		h, ok := m.Reg.HiveAt(root)
		if !ok {
			continue
		}
		b.WriteByte('|')
		b.WriteString(root)
		b.WriteByte('=')
		b.WriteString(strconv.FormatUint(h.Generation(), 10))
	}
	return b.String()
}
