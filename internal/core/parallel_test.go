package core

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/machine"
	"ghostbuster/internal/winapi"
)

// scanScenarios are the seed infection scenarios the golden comparison
// runs: clean, a hook-based rootkit, a code-patching rootkit, and a
// DKOM rootkit (which needs the advanced process scan).
func scanScenarios() []struct {
	name    string
	install func(m *machine.Machine) error
} {
	return []struct {
		name    string
		install func(m *machine.Machine) error
	}{
		{"clean", func(m *machine.Machine) error { return nil }},
		{"hacker-defender", func(m *machine.Machine) error { return ghostware.NewHackerDefender().Install(m) }},
		{"vanquish", func(m *machine.Machine) error { return ghostware.NewVanquish().Install(m) }},
		{"fu", func(m *machine.Machine) error { return ghostware.NewFU().Install(m) }},
	}
}

// scenarioMachine builds a deterministic machine (fixed seed, no churn)
// and installs the scenario's ghostware. Two calls with the same
// scenario produce byte-identical machines.
func scenarioMachine(t *testing.T, install func(m *machine.Machine) error) *machine.Machine {
	t.Helper()
	m := mustMachine(t)
	if err := install(m); err != nil {
		t.Fatalf("install: %v", err)
	}
	return m
}

func reportsJSON(t *testing.T, reports []*Report) string {
	t.Helper()
	b, err := json.MarshalIndent(reports, "", " ")
	if err != nil {
		t.Fatalf("marshal reports: %v", err)
	}
	return string(b)
}

// TestParallelScanAllMatchesSequential is the golden comparison of the
// acceptance criteria: for every seed scenario, the parallel sweep at
// every lane count must produce byte-identical Reports to the
// sequential path. Scan units are statically assigned to virtual-time
// lanes, so nothing in a Report may depend on goroutine interleaving.
func TestParallelScanAllMatchesSequential(t *testing.T) {
	for _, sc := range scanScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			seq := NewDetector(scenarioMachine(t, sc.install))
			seq.Advanced = true
			want, err := seq.ScanAll()
			if err != nil {
				t.Fatalf("sequential ScanAll: %v", err)
			}
			wantJSON := reportsJSON(t, want)
			for _, lanes := range []int{2, 3, 4, 8, 16} {
				d := NewDetector(scenarioMachine(t, sc.install))
				d.Advanced = true
				d.Parallelism = lanes
				got, err := d.ScanAll()
				if err != nil {
					t.Fatalf("parallel(%d) ScanAll: %v", lanes, err)
				}
				if gotJSON := reportsJSON(t, got); gotJSON != wantJSON {
					t.Errorf("parallel(%d) reports differ from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s",
						lanes, wantJSON, gotJSON)
				}
			}
		})
	}
}

// TestParallelWarmCacheMatchesSequential repeats the golden comparison
// for the cached-warm sweep: the second sweep of an unchanged machine
// serves both truth parses from cache, and its reports must still be
// byte-identical between the sequential and parallel paths.
func TestParallelWarmCacheMatchesSequential(t *testing.T) {
	warmReports := func(parallelism int) string {
		d := NewCachedDetector(scenarioMachine(t, func(m *machine.Machine) error {
			return ghostware.NewHackerDefender().Install(m)
		}))
		d.Advanced = true
		d.Parallelism = parallelism
		if _, err := d.ScanAll(); err != nil {
			t.Fatalf("priming sweep: %v", err)
		}
		reports, err := d.ScanAll()
		if err != nil {
			t.Fatalf("warm sweep: %v", err)
		}
		if s := d.Cache.Stats(); s.Hits < 2 {
			t.Fatalf("warm sweep did not hit the cache: %+v", s)
		}
		return reportsJSON(t, reports)
	}
	want := warmReports(1)
	for _, lanes := range []int{2, 4, 8} {
		if got := warmReports(lanes); got != want {
			t.Errorf("warm parallel(%d) reports differ from sequential:\n%s\nvs\n%s", lanes, got, want)
		}
	}
}

// TestParallelScanAllUnderMutation exercises the concurrent sweep while
// a ghostware-style mutator commits volume and hive changes (run under
// -race via scripts/check.sh). After the mutator stops, it plants a
// hook-hidden file and asserts the next sweep still finds it — the
// generation-keyed cache must have invalidated across the mutations
// rather than serving a stale truth snapshot.
func TestParallelScanAllUnderMutation(t *testing.T) {
	m := mustMachine(t)
	d := NewCachedDetector(m)
	d.Advanced = true
	d.Parallelism = 4

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Rotate over a fixed set of paths/values so the mutator only
			// adds or overwrites (never removes — a concurrent high-level
			// walk must not trip over a vanishing directory) and the MFT
			// does not grow unboundedly.
			slot := i % 8
			path := fmt.Sprintf(`C:\WINDOWS\Temp\churn%d.tmp`, slot)
			if err := m.DropFile(path, []byte(fmt.Sprintf("gen %d", i))); err != nil {
				t.Errorf("mutator DropFile: %v", err)
				return
			}
			if err := m.Reg.SetString(`HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\Run`,
				fmt.Sprintf("churn%d", slot), path); err != nil {
				t.Errorf("mutator SetString: %v", err)
				return
			}
		}
	}()

	for i := 0; i < 8; i++ {
		if _, err := d.ScanAll(); err != nil {
			t.Fatalf("ScanAll under mutation: %v", err)
		}
	}
	close(stop)
	<-done

	// The mutator bumped generations the whole time; the cache must have
	// reparsed rather than pinning the first sweep's snapshot.
	if s := d.Cache.Stats(); s.Misses < 2 {
		t.Errorf("mutating sweeps never missed the cache: %+v", s)
	}

	// Plant a freshly hidden file and hook after the churn: a correct
	// generation key forces a reparse that exposes both.
	const hidden = `C:\WINDOWS\system32\ghost.dll`
	if err := m.DropFile(hidden, []byte("MZ evil")); err != nil {
		t.Fatal(err)
	}
	m.API.Install(winapi.NewFileHideHook("ghost", winapi.LevelIAT, "IAT", nil,
		func(call *winapi.Call, e winapi.DirEntry) bool {
			return strings.EqualFold(e.Name, "ghost.dll")
		}))
	reports, err := d.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	files := reports[0]
	foundHidden := false
	for _, f := range files.Hidden {
		if strings.Contains(f.ID, "GHOST.DLL") {
			foundHidden = true
		}
	}
	if !foundHidden {
		t.Errorf("post-mutation sweep missed the planted hidden file; hidden = %+v", files.Hidden)
	}
}

// TestModuleScanCountsSkippedPids pins the satellite fix: pids that fail
// module enumeration are counted, not silently dropped.
func TestModuleScanCountsSkippedPids(t *testing.T) {
	m := mustMachine(t)
	pids, err := TruthPids(m)
	if err != nil {
		t.Fatal(err)
	}
	// Append pids that do not exist: both scans must skip and count them.
	bogus := append(append([]uint64{}, pids...), 99991, 99993)
	high, err := ScanModsHigh(m, m.SystemCall(), bogus)
	if err != nil {
		t.Fatal(err)
	}
	if high.Skipped != 2 {
		t.Errorf("high Skipped = %d, want 2", high.Skipped)
	}
	low, err := ScanModsLow(m, bogus)
	if err != nil {
		t.Fatal(err)
	}
	if low.Skipped != 2 {
		t.Errorf("low Skipped = %d, want 2", low.Skipped)
	}
	r, err := Diff(high, low, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.HighSkipped != 2 || r.LowSkipped != 2 {
		t.Errorf("report skipped = %d/%d, want 2/2", r.HighSkipped, r.LowSkipped)
	}
	if !strings.Contains(r.Summary(), "4 targets skipped") {
		t.Errorf("summary does not surface skips: %q", r.Summary())
	}
	// A scan with no failures must not mention skips.
	cleanHigh, err := ScanModsHigh(m, m.SystemCall(), pids)
	if err != nil {
		t.Fatal(err)
	}
	cleanLow, err := ScanModsLow(m, pids)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Diff(cleanHigh, cleanLow, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if clean.HighSkipped != 0 || clean.LowSkipped != 0 || strings.Contains(clean.Summary(), "skipped") {
		t.Errorf("clean scan reports skips: %q", clean.Summary())
	}
}
