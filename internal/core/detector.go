package core

import (
	"fmt"

	"ghostbuster/internal/machine"
	"ghostbuster/internal/winapi"
)

// Detector is the inside-the-box GhostBuster tool: it runs paired
// high/low scans for each resource type on one machine and diffs them.
type Detector struct {
	M *machine.Machine
	// Advanced selects the CID-table traversal for the process low scan
	// (needed against DKOM rootkits like FU; paper §4).
	Advanced bool
	// AsProcess overrides the identity the high-level scans run under
	// (default explorer.exe). The §5 DLL-injection extension runs the
	// same scans as every process in turn.
	AsProcess string
	// Diff tuning (noise filters apply to outside scans; inside scans
	// are expected to be clean).
	Opts DiffOptions
	// Cache, when set, memoizes the low-level (truth-side) parses across
	// repeated sweeps, keyed on the truth sources' mutation generations.
	// The high-level scans are never cached: they must re-traverse the
	// hookable API chain every sweep. Must be a cache built on M.
	Cache *ScanCache
}

// NewDetector builds a detector with default settings on m: inside-the-
// box scans with only the baseline noise filters (benign ADS markers).
func NewDetector(m *machine.Machine) *Detector {
	return &Detector{M: m, Opts: DiffOptions{NoiseFilters: BaselineNoiseFilters()}}
}

// NewCachedDetector builds a detector like NewDetector but with an
// incremental-scan cache attached — the configuration a fleet's daily
// sweep loop uses.
func NewCachedDetector(m *machine.Machine) *Detector {
	d := NewDetector(m)
	d.Cache = NewScanCache(m)
	return d
}

func (d *Detector) lowFiles() (*Snapshot, error) {
	if d.Cache != nil {
		return d.Cache.ScanFilesLow()
	}
	return ScanFilesLow(d.M)
}

func (d *Detector) lowASEPs() (*Snapshot, error) {
	if d.Cache != nil {
		return d.Cache.ScanASEPLow()
	}
	return ScanASEPLow(d.M)
}

func (d *Detector) call() (*winapi.Call, error) {
	name := d.AsProcess
	if name == "" {
		return d.M.SystemCall(), nil
	}
	return d.M.CallAs(name)
}

// ScanFiles runs the inside-the-box hidden-file detection (§2).
func (d *Detector) ScanFiles() (*Report, error) {
	call, err := d.call()
	if err != nil {
		return nil, err
	}
	high, err := ScanFilesHigh(d.M, call)
	if err != nil {
		return nil, err
	}
	low, err := d.lowFiles()
	if err != nil {
		return nil, err
	}
	return Diff(high, low, d.Opts)
}

// ScanASEPs runs the inside-the-box hidden-Registry detection (§3).
func (d *Detector) ScanASEPs() (*Report, error) {
	call, err := d.call()
	if err != nil {
		return nil, err
	}
	high, err := ScanASEPHigh(d.M, call)
	if err != nil {
		return nil, err
	}
	low, err := d.lowASEPs()
	if err != nil {
		return nil, err
	}
	return Diff(high, low, d.Opts)
}

// ScanProcesses runs the inside-the-box hidden-process detection (§4).
func (d *Detector) ScanProcesses() (*Report, error) {
	call, err := d.call()
	if err != nil {
		return nil, err
	}
	high, err := ScanProcsHigh(d.M, call)
	if err != nil {
		return nil, err
	}
	low, err := ScanProcsLow(d.M, d.Advanced)
	if err != nil {
		return nil, err
	}
	return Diff(high, low, d.Opts)
}

// ScanModules runs the inside-the-box hidden-module detection (§4). The
// pid set comes from the kernel truth so hidden processes' modules are
// covered.
func (d *Detector) ScanModules() (*Report, error) {
	call, err := d.call()
	if err != nil {
		return nil, err
	}
	pids, err := TruthPids(d.M)
	if err != nil {
		return nil, err
	}
	high, err := ScanModsHigh(d.M, call, pids)
	if err != nil {
		return nil, err
	}
	low, err := ScanModsLow(d.M, pids)
	if err != nil {
		return nil, err
	}
	return Diff(high, low, d.Opts)
}

// ScanAll runs all four detections and returns the reports in the
// paper's order: files, ASEP hooks, processes, modules.
func (d *Detector) ScanAll() ([]*Report, error) {
	type step struct {
		name string
		run  func() (*Report, error)
	}
	steps := []step{
		{"files", d.ScanFiles},
		{"ASEPs", d.ScanASEPs},
		{"processes", d.ScanProcesses},
		{"modules", d.ScanModules},
	}
	out := make([]*Report, 0, len(steps))
	for _, s := range steps {
		r, err := s.run()
		if err != nil {
			return nil, fmt.Errorf("core: %s scan: %w", s.name, err)
		}
		out = append(out, r)
	}
	return out, nil
}
