package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ghostbuster/internal/machine"
	"ghostbuster/internal/vtime"
	"ghostbuster/internal/winapi"
)

// Detector is the inside-the-box GhostBuster tool: it runs paired
// high/low scans for each resource type on one machine and diffs them.
type Detector struct {
	M *machine.Machine
	// Advanced selects the CID-table traversal for the process low scan
	// (needed against DKOM rootkits like FU; paper §4).
	Advanced bool
	// AsProcess overrides the identity the high-level scans run under
	// (default explorer.exe). The §5 DLL-injection extension runs the
	// same scans as every process in turn.
	AsProcess string
	// Diff tuning (noise filters apply to outside scans; inside scans
	// are expected to be clean).
	Opts DiffOptions
	// Cache, when set, memoizes the low-level (truth-side) parses across
	// repeated sweeps, keyed on the truth sources' mutation generations.
	// The high-level scans are never cached: they must re-traverse the
	// hookable API chain every sweep. Must be a cache built on M.
	Cache *ScanCache
	// Parallelism bounds how many scan units of one ScanAll sweep run
	// concurrently. A sweep has eight units (the high/low pair of each of
	// the four resource detections); values above eight are clamped.
	// Zero or one keeps the sequential path. Reports are byte-identical
	// either way: units are statically assigned to virtual-time lanes, so
	// per-scan charges never depend on goroutine interleaving.
	Parallelism int
	// Contain turns on per-scan-unit error containment: a unit that
	// fails (or panics) no longer aborts ScanAll; its resource pair's
	// report records the loss in DegradedUnits and carries whatever the
	// surviving views support. Fleet sweeps and chaos runs set this; the
	// default (off) preserves strict fail-fast semantics.
	Contain bool
	// Deadline, when positive, bounds one ScanAll sweep in virtual time.
	// Units not yet started when the budget is exhausted are abandoned:
	// degraded under Contain, an error otherwise.
	Deadline time.Duration
	// Cancel, when non-nil, is an external abort seam checked at every
	// unit boundary: once the channel closes, units not yet started are
	// abandoned (degraded under Contain, an error otherwise), exactly
	// like a spent Deadline but on a wall-clock trigger. A unit already
	// inside a wedged read is not interrupted — the watchdog layer
	// abandons the whole scan instead, the same way an OS cannot unstick
	// a D-state thread.
	Cancel <-chan struct{}
	// OnReport, when set, receives each report as soon as it is
	// assembled. Fleet sweeps use it to retain partial results when a
	// later unit panics or the host scan is cut short.
	OnReport func(*Report)
	// Units enables next-generation scan units beyond the paper's eight
	// (see nextgen.go). Their reports follow the paper's four, in
	// UnitCrossMem, UnitBootChain, UnitRemovable order.
	Units UnitSet
	// OrderSeed, when nonzero, permutes the EXECUTION order of the scan
	// units (Fisher-Yates keyed on the seed). Report order and content
	// are unchanged for honest machines — but adaptive ghostware that
	// watches for scan-shaped API traffic and unhides mid-sweep can only
	// win against a predictable order, so randomized sweeps deny it the
	// timing oracle. Zero keeps the paper's fixed order.
	OrderSeed int64

	// intern is the detector's string-interning table: every snapshot the
	// detector builds indexes it, so the two sides of each diff share
	// symbols and the merge-join engine applies. Lazily created; when
	// Cache is set the cache's table is used instead (cached snapshots
	// must outlive any one sweep's table).
	intern *InternTable
}

// NewDetector builds a detector with default settings on m: inside-the-
// box scans with only the baseline noise filters (benign ADS markers).
func NewDetector(m *machine.Machine) *Detector {
	return &Detector{M: m, Opts: DiffOptions{NoiseFilters: BaselineNoiseFilters()}}
}

// NewCachedDetector builds a detector like NewDetector but with an
// incremental-scan cache attached — the configuration a fleet's daily
// sweep loop uses.
func NewCachedDetector(m *machine.Machine) *Detector {
	d := NewDetector(m)
	d.Cache = NewScanCache(m)
	return d
}

// table returns the interning table all of this detector's snapshots
// share. Not safe to call first from concurrent goroutines — the sweep
// paths resolve it once before forking lanes.
func (d *Detector) table() *InternTable {
	if d.Cache != nil {
		return d.Cache.table()
	}
	if d.intern == nil {
		d.intern = NewInternTable()
	}
	return d.intern
}

func (d *Detector) lowFilesC(clk *vtime.Clock, workers int, t *InternTable) (*ColumnarSnapshot, error) {
	if d.Cache != nil {
		return d.Cache.scanFilesLowOn(clk, workers)
	}
	return scanFilesLowC(d.M, clk, workers, t)
}

func (d *Detector) lowASEPsC(clk *vtime.Clock, t *InternTable) (*ColumnarSnapshot, error) {
	if d.Cache != nil {
		return d.Cache.scanASEPLowOn(clk)
	}
	return scanASEPLowC(d.M, clk, t)
}

func (d *Detector) call() (*winapi.Call, error) {
	name := d.AsProcess
	if name == "" {
		return d.M.SystemCall(), nil
	}
	return d.M.CallAs(name)
}

// callOn builds a fresh call whose API traffic charges the given lane
// clock instead of the machine clock.
func (d *Detector) callOn(clk *vtime.Clock) (*winapi.Call, error) {
	call, err := d.call()
	if err != nil {
		return nil, err
	}
	laned := *call
	laned.Clock = clk
	return &laned, nil
}

// ScanFiles runs the inside-the-box hidden-file detection (§2).
func (d *Detector) ScanFiles() (*Report, error) {
	call, err := d.call()
	if err != nil {
		return nil, err
	}
	t := d.table()
	high, err := scanFilesHighC(d.M, call, t)
	if err != nil {
		return nil, err
	}
	low, err := d.lowFilesC(d.M.Clock, 1, t)
	if err != nil {
		return nil, err
	}
	return sealedDiffColumnar(high, low, d.Opts)
}

// ScanASEPs runs the inside-the-box hidden-Registry detection (§3).
func (d *Detector) ScanASEPs() (*Report, error) {
	call, err := d.call()
	if err != nil {
		return nil, err
	}
	t := d.table()
	high, err := scanASEPHighC(d.M, call, t)
	if err != nil {
		return nil, err
	}
	low, err := d.lowASEPsC(d.M.Clock, t)
	if err != nil {
		return nil, err
	}
	return sealedDiffColumnar(high, low, d.Opts)
}

// ScanProcesses runs the inside-the-box hidden-process detection (§4).
func (d *Detector) ScanProcesses() (*Report, error) {
	call, err := d.call()
	if err != nil {
		return nil, err
	}
	t := d.table()
	high, err := scanProcsHighC(d.M, call, t)
	if err != nil {
		return nil, err
	}
	low, err := scanProcsLowC(d.M, d.Advanced, d.M.Clock, t)
	if err != nil {
		return nil, err
	}
	return sealedDiffColumnar(high, low, d.Opts)
}

// ScanModules runs the inside-the-box hidden-module detection (§4). The
// pid set comes from the kernel truth so hidden processes' modules are
// covered.
func (d *Detector) ScanModules() (*Report, error) {
	call, err := d.call()
	if err != nil {
		return nil, err
	}
	pids, err := TruthPids(d.M)
	if err != nil {
		return nil, err
	}
	t := d.table()
	high, err := scanModsHighC(d.M, call, pids, t)
	if err != nil {
		return nil, err
	}
	low, err := scanModsLowC(d.M, pids, d.M.Clock, t)
	if err != nil {
		return nil, err
	}
	return sealedDiffColumnar(high, low, d.Opts)
}

// ScanAll runs all four detections and returns the reports in the
// paper's order: files, ASEP hooks, processes, modules. With
// Parallelism > 1, the eight scan units fan out across that many
// goroutines (clamped to eight); see scanAllParallel. Reports are
// byte-identical for any lane count, and — absent faults, deadlines,
// and panics — identical whether or not Contain is set.
func (d *Detector) ScanAll() ([]*Report, error) {
	genStart := d.M.Disk.Generation()
	sweepStart := d.M.Clock.Now()
	if d.Parallelism > 1 {
		lanes := d.Parallelism
		if max := 2 * len(d.pairSpecs()); lanes > max {
			lanes = max
		}
		return d.scanAllParallel(lanes, genStart, sweepStart)
	}
	return d.scanAllSequential(genStart, sweepStart)
}

// numScanUnits is the number of always-on scan units in one sweep: the
// high and low scan of each of the paper's four resource detections.
// Detector.Units can enable up to three more pairs.
const numScanUnits = 8

// maxScanUnits bounds one sweep's unit count: the paper eight plus the
// three next-generation pairs. Execution-order permutations live in a
// fixed-size array of this bound, so randomized ordering allocates
// nothing.
const maxScanUnits = numScanUnits + 6

// pairSpec describes one resource pair of a sweep: unit 2i is pair i's
// high scan, unit 2i+1 its low scan.
type pairSpec struct {
	name     string
	kind     ResourceKind
	highView View
	lowView  View
}

// pairSpecs lists the sweep's pairs in report order: the paper's four,
// then the enabled next-generation pairs.
func (d *Detector) pairSpecs() []pairSpec {
	procLow := ViewKernelAPL
	if d.Advanced {
		procLow = ViewKernelCID
	}
	specs := make([]pairSpec, 0, maxScanUnits/2)
	specs = append(specs,
		pairSpec{"files", KindFiles, ViewWin32Inside, ViewRawMFT},
		pairSpec{"ASEPs", KindASEPHooks, ViewWin32Inside, ViewRawHive},
		pairSpec{"processes", KindProcesses, ViewWin32Inside, procLow},
		pairSpec{"modules", KindModules, ViewWin32Inside, ViewKernelVAD},
	)
	if d.Units.Has(UnitCrossMem) {
		specs = append(specs, pairSpec{"kmem-carve", KindProcesses, ViewKernelCID, ViewKernelCarve})
	}
	if d.Units.Has(UnitBootChain) {
		specs = append(specs, pairSpec{"boot-chain", KindBootChain, ViewBootAPI, ViewBootRaw})
	}
	if d.Units.Has(UnitRemovable) {
		specs = append(specs, pairSpec{"removable", KindFiles, ViewWin32Inside, ViewRawRemovable})
	}
	return specs
}

// unitName labels unit u for errors and DegradedUnits entries.
func unitName(specs []pairSpec, u int) string {
	side := "high"
	if u%2 == 1 {
		side = "low"
	}
	return specs[u/2].name + "/" + side
}

// scanOrder fills perm with the unit execution order: identity for seed
// zero, a seeded Fisher-Yates shuffle otherwise (splitmix64 steps, so
// the order is a pure function of the seed and unit count).
func scanOrder(perm []int, seed int64) {
	for i := range perm {
		perm[i] = i
	}
	if seed == 0 {
		return
	}
	x := uint64(seed)
	for i := len(perm) - 1; i > 0; i-- {
		x += 0x9E3779B97F4A7C15
		z := x
		z ^= z >> 30
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 27
		z *= 0x94D049BB133111EB
		z ^= z >> 31
		j := int(z % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
}

// ScanOrder returns the execution order a sweep of n units runs under
// the given seed. Exposed so tests and oracles can pick seeds that put
// chosen units ahead of the evasion trigger.
func ScanOrder(seed int64, n int) []int {
	perm := make([]int, n)
	scanOrder(perm, seed)
	return perm
}

// errDeadline marks units abandoned because the sweep's virtual-time
// budget ran out before they started.
var errDeadline = errors.New("core: scan deadline exceeded")

// ErrCancelled marks units abandoned because the sweep's Cancel channel
// closed before they started. Exported so the fleet layer can recognize
// a cancellation casualty (its text survives both the fail-fast error
// and a contained unit's DegradedUnit fault) and discard it instead of
// committing a partial verdict.
var ErrCancelled = errors.New("core: scan cancelled")

// scanUnits builds the eight unit closures in report order, high before
// low within each pair. Every unit interns into the shared table t
// (resolved by the caller before any forking — the table itself is
// concurrency-safe, but the lazy init in d.table is not). pids resolves
// the truth pid list both module units share: the parallel path
// precomputes it before forking (on the machine clock, as before), the
// sequential path computes it lazily so the call/pids charge order of
// the original ScanModules is preserved.
func (d *Detector) scanUnits(workers int, t *InternTable, pids func() ([]uint64, error), specs []pairSpec) []func(*vtime.Clock) (*ColumnarSnapshot, error) {
	highUnit := func(scan func(*machine.Machine, *winapi.Call, *InternTable) (*ColumnarSnapshot, error)) func(*vtime.Clock) (*ColumnarSnapshot, error) {
		return func(clk *vtime.Clock) (*ColumnarSnapshot, error) {
			call, err := d.callOn(clk)
			if err != nil {
				return nil, err
			}
			return scan(d.M, call, t)
		}
	}
	// The raw-MFT unit dominates a cold sweep, so it additionally shards
	// its record decode across the lane bound (the other lanes' units are
	// small and finish early, freeing cores for the decode shards).
	units := make([]func(*vtime.Clock) (*ColumnarSnapshot, error), 0, 2*len(specs))
	units = append(units,
		highUnit(scanFilesHighC),
		func(clk *vtime.Clock) (*ColumnarSnapshot, error) { return d.lowFilesC(clk, workers, t) },
		highUnit(scanASEPHighC),
		func(clk *vtime.Clock) (*ColumnarSnapshot, error) { return d.lowASEPsC(clk, t) },
		highUnit(scanProcsHighC),
		func(clk *vtime.Clock) (*ColumnarSnapshot, error) { return scanProcsLowC(d.M, d.Advanced, clk, t) },
		func(clk *vtime.Clock) (*ColumnarSnapshot, error) {
			call, err := d.callOn(clk)
			if err != nil {
				return nil, err
			}
			p, err := pids()
			if err != nil {
				return nil, err
			}
			return scanModsHighC(d.M, call, p, t)
		},
		func(clk *vtime.Clock) (*ColumnarSnapshot, error) {
			p, err := pids()
			if err != nil {
				return nil, err
			}
			return scanModsLowC(d.M, p, clk, t)
		},
	)
	for _, s := range specs[numScanUnits/2:] {
		switch s.name {
		case "kmem-carve":
			units = append(units,
				func(clk *vtime.Clock) (*ColumnarSnapshot, error) { return scanCrossMemHighC(d.M, clk, t) },
				func(clk *vtime.Clock) (*ColumnarSnapshot, error) { return scanCrossMemLowC(d.M, clk, t) },
			)
		case "boot-chain":
			units = append(units,
				highUnit(scanBootHighC),
				func(clk *vtime.Clock) (*ColumnarSnapshot, error) { return scanBootLowC(d.M, clk, t) },
			)
		case "removable":
			units = append(units,
				highUnit(scanRemovableHighC),
				func(clk *vtime.Clock) (*ColumnarSnapshot, error) { return d.lowRemovableC(clk, t) },
			)
		}
	}
	return units
}

// lowRemovableC routes the removable truth scan through the cache when
// one is attached.
func (d *Detector) lowRemovableC(clk *vtime.Clock, t *InternTable) (*ColumnarSnapshot, error) {
	if d.Cache != nil {
		return d.Cache.scanRemovableLowOn(clk)
	}
	return scanRemovableLowC(d.M, clk, t)
}

// runUnit executes one unit with panic recovery: a panicking scanner
// becomes a unit error (degrading the pair under Contain) instead of
// tearing down the whole sweep.
func runUnit(name string, clk *vtime.Clock, run func(*vtime.Clock) (*ColumnarSnapshot, error)) (snap *ColumnarSnapshot, err error) {
	defer func() {
		if r := recover(); r != nil {
			snap, err = nil, fmt.Errorf("core: scan unit %s panicked: %v", name, r)
		}
	}()
	return run(clk)
}

// overDeadline reports whether the sweep's virtual-time budget is spent
// on the given clock.
func (d *Detector) overDeadline(clk *vtime.Clock, sweepStart time.Duration) bool {
	return d.Deadline > 0 && clk.Now()-sweepStart > d.Deadline
}

// abandonUnit reports whether the next unit should be abandoned rather
// than started, and with which marker error: virtual-time budget spent,
// or external cancellation.
func (d *Detector) abandonUnit(clk *vtime.Clock, sweepStart time.Duration) error {
	if d.overDeadline(clk, sweepStart) {
		return errDeadline
	}
	if d.Cancel != nil {
		select {
		case <-d.Cancel:
			return ErrCancelled
		default:
		}
	}
	return nil
}

// scanAllSequential runs the eight units in order on the machine clock.
// Without Contain it fails fast — the first unit error aborts the sweep
// before later units charge any time, exactly as the historical
// per-resource scan methods did.
func (d *Detector) scanAllSequential(genStart uint64, sweepStart time.Duration) ([]*Report, error) {
	var pids []uint64
	var pidsErr error
	pidsDone := false
	pidsOnce := func() ([]uint64, error) {
		if !pidsDone {
			pids, pidsErr = TruthPids(d.M)
			pidsDone = true
		}
		return pids, pidsErr
	}
	specs := d.pairSpecs()
	units := d.scanUnits(1, d.table(), pidsOnce, specs)
	snaps := make([]*ColumnarSnapshot, len(units))
	errs := make([]error, len(units))
	var permBuf [maxScanUnits]int
	perm := permBuf[:len(units)]
	scanOrder(perm, d.OrderSeed)
	for _, u := range perm {
		if abandon := d.abandonUnit(d.M.Clock, sweepStart); abandon != nil {
			errs[u] = abandon
		} else {
			snaps[u], errs[u] = runUnit(unitName(specs, u), d.M.Clock, units[u])
		}
		if errs[u] != nil && !d.Contain {
			return nil, fmt.Errorf("core: %s scan: %w", specs[u/2].name, errs[u])
		}
	}
	return d.assemble(specs, snaps, errs, genStart)
}

// scanAllParallel is the fan-out sweep. The eight scan units are
// statically assigned round-robin to `lanes` virtual-time lanes
// (unit j runs on lane j mod lanes); each lane is one goroutine running
// its units in order and charging the lane's clock, so every unit's
// virtual cost and Elapsed are identical to the sequential path — the
// assignment never depends on goroutine scheduling. Joining the region
// advances the machine clock by the longest lane, which is exactly the
// wall-clock a set of concurrent scanners would have cost.
func (d *Detector) scanAllParallel(lanes int, genStart uint64, sweepStart time.Duration) ([]*Report, error) {
	// The truth pid list feeds both module units; compute it once before
	// forking, as the sequential ScanModules does.
	pids, pidsErr := TruthPids(d.M)
	if pidsErr != nil && !d.Contain {
		return nil, fmt.Errorf("core: modules scan: %w", pidsErr)
	}
	pidsOnce := func() ([]uint64, error) { return pids, pidsErr }
	specs := d.pairSpecs()
	units := d.scanUnits(lanes, d.table(), pidsOnce, specs)
	var permBuf [maxScanUnits]int
	perm := permBuf[:len(units)]
	scanOrder(perm, d.OrderSeed)
	var (
		snaps  = make([]*ColumnarSnapshot, len(units))
		errs   = make([]error, len(units))
		region = d.M.Clock.Fork(lanes)
		wg     sync.WaitGroup
	)
	for lane := 0; lane < lanes; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			clk := region.Lane(lane)
			for k := lane; k < len(units); k += lanes {
				u := perm[k]
				if abandon := d.abandonUnit(clk, sweepStart); abandon != nil {
					errs[u] = abandon
					continue
				}
				snaps[u], errs[u] = runUnit(unitName(specs, u), clk, units[u])
			}
		}(lane)
	}
	wg.Wait()
	region.Join()
	if !d.Contain {
		for u := range units {
			if errs[u] != nil {
				return nil, fmt.Errorf("core: %s scan: %w", specs[u/2].name, errs[u])
			}
		}
	}
	return d.assemble(specs, snaps, errs, genStart)
}

// assemble diffs the unit snapshots into the per-pair reports. Under
// Contain, pairs with failed units yield degraded reports instead of
// errors, and a files pair whose disk generation moved mid-sweep is
// demoted: its findings may be mutation races, not hiding, so they are
// dropped and the demotion is recorded.
func (d *Detector) assemble(specs []pairSpec, snaps []*ColumnarSnapshot, errs []error, genStart uint64) ([]*Report, error) {
	diskMoved := d.Contain && d.M.Disk.Generation() != genStart
	out := make([]*Report, 0, len(specs))
	for i, spec := range specs {
		name := spec.name
		high, low := snaps[2*i], snaps[2*i+1]
		highErr, lowErr := errs[2*i], errs[2*i+1]
		var r *Report
		if highErr == nil && lowErr == nil {
			var err error
			r, err = DiffColumnar(high, low, d.Opts)
			if err != nil {
				if !d.Contain {
					return nil, fmt.Errorf("core: %s scan: %w", name, err)
				}
				r = stubReport(spec, high, low)
				r.DegradedUnits = append(r.DegradedUnits, DegradedUnit{
					Unit: name + "/pair", Fault: err.Error(), Compared: comparedViews(high, low),
				})
			}
		} else {
			r = stubReport(spec, high, low)
			if highErr != nil {
				r.DegradedUnits = append(r.DegradedUnits, DegradedUnit{
					Unit: name + "/high", Fault: highErr.Error(), Compared: comparedViews(high, low),
				})
			}
			if lowErr != nil {
				r.DegradedUnits = append(r.DegradedUnits, DegradedUnit{
					Unit: name + "/low", Fault: lowErr.Error(), Compared: comparedViews(high, low),
				})
			}
		}
		if i == 0 && diskMoved && r != nil && len(r.DegradedUnits) == 0 {
			// The filesystem changed under the sweep: a file created
			// between the high walk and the raw parse shows up low-only
			// without being hidden. Cross-view findings from this pair
			// are unreliable, so drop them and surface the race.
			r.Hidden, r.Noise, r.Phantom = nil, nil, nil
			r.MassHiding = nil
			r.DegradedUnits = append(r.DegradedUnits, DegradedUnit{
				Unit: "files/pair", Fault: "mid-scan filesystem mutation (device generation changed)",
				Compared: comparedViews(high, low),
			})
		}
		// Stub reports never went through Diff, and the demotion above
		// rewrites findings after sealing — re-seal so every report the
		// detector emits carries a digest matching its final content.
		r.Seal()
		if d.OnReport != nil {
			d.OnReport(r)
		}
		out = append(out, r)
	}
	return out, nil
}

// stubReport builds the degraded report for a pair from whatever
// snapshots survived; the spec supplies the nominal kind and views for
// snapshots that never materialized.
func stubReport(spec pairSpec, high, low *ColumnarSnapshot) *Report {
	r := &Report{Kind: spec.kind, HighView: spec.highView, LowView: spec.lowView}
	if high != nil {
		r.HighView = high.View
		r.HighSkipped = high.Skipped
		r.Elapsed += high.Elapsed
	}
	if low != nil {
		r.LowView = low.View
		r.LowSkipped = low.Skipped
		r.Elapsed += low.Elapsed
	}
	return r
}

// comparedViews lists the views that produced usable snapshots.
func comparedViews(high, low *ColumnarSnapshot) []View {
	var out []View
	if high != nil {
		out = append(out, high.View)
	}
	if low != nil {
		out = append(out, low.View)
	}
	return out
}
