package core

import (
	"fmt"
	"sync"

	"ghostbuster/internal/machine"
	"ghostbuster/internal/vtime"
	"ghostbuster/internal/winapi"
)

// Detector is the inside-the-box GhostBuster tool: it runs paired
// high/low scans for each resource type on one machine and diffs them.
type Detector struct {
	M *machine.Machine
	// Advanced selects the CID-table traversal for the process low scan
	// (needed against DKOM rootkits like FU; paper §4).
	Advanced bool
	// AsProcess overrides the identity the high-level scans run under
	// (default explorer.exe). The §5 DLL-injection extension runs the
	// same scans as every process in turn.
	AsProcess string
	// Diff tuning (noise filters apply to outside scans; inside scans
	// are expected to be clean).
	Opts DiffOptions
	// Cache, when set, memoizes the low-level (truth-side) parses across
	// repeated sweeps, keyed on the truth sources' mutation generations.
	// The high-level scans are never cached: they must re-traverse the
	// hookable API chain every sweep. Must be a cache built on M.
	Cache *ScanCache
	// Parallelism bounds how many scan units of one ScanAll sweep run
	// concurrently. A sweep has eight units (the high/low pair of each of
	// the four resource detections); values above eight are clamped.
	// Zero or one keeps the sequential path. Reports are byte-identical
	// either way: units are statically assigned to virtual-time lanes, so
	// per-scan charges never depend on goroutine interleaving.
	Parallelism int
}

// NewDetector builds a detector with default settings on m: inside-the-
// box scans with only the baseline noise filters (benign ADS markers).
func NewDetector(m *machine.Machine) *Detector {
	return &Detector{M: m, Opts: DiffOptions{NoiseFilters: BaselineNoiseFilters()}}
}

// NewCachedDetector builds a detector like NewDetector but with an
// incremental-scan cache attached — the configuration a fleet's daily
// sweep loop uses.
func NewCachedDetector(m *machine.Machine) *Detector {
	d := NewDetector(m)
	d.Cache = NewScanCache(m)
	return d
}

func (d *Detector) lowFiles() (*Snapshot, error) {
	return d.lowFilesOn(d.M.Clock, 1)
}

func (d *Detector) lowFilesOn(clk *vtime.Clock, workers int) (*Snapshot, error) {
	if d.Cache != nil {
		return d.Cache.scanFilesLowOn(clk, workers)
	}
	return scanFilesLowOn(d.M, clk, workers)
}

func (d *Detector) lowASEPs() (*Snapshot, error) {
	return d.lowASEPsOn(d.M.Clock)
}

func (d *Detector) lowASEPsOn(clk *vtime.Clock) (*Snapshot, error) {
	if d.Cache != nil {
		return d.Cache.scanASEPLowOn(clk)
	}
	return scanASEPLowOn(d.M, clk)
}

func (d *Detector) call() (*winapi.Call, error) {
	name := d.AsProcess
	if name == "" {
		return d.M.SystemCall(), nil
	}
	return d.M.CallAs(name)
}

// callOn builds a fresh call whose API traffic charges the given lane
// clock instead of the machine clock.
func (d *Detector) callOn(clk *vtime.Clock) (*winapi.Call, error) {
	call, err := d.call()
	if err != nil {
		return nil, err
	}
	laned := *call
	laned.Clock = clk
	return &laned, nil
}

// ScanFiles runs the inside-the-box hidden-file detection (§2).
func (d *Detector) ScanFiles() (*Report, error) {
	call, err := d.call()
	if err != nil {
		return nil, err
	}
	high, err := ScanFilesHigh(d.M, call)
	if err != nil {
		return nil, err
	}
	low, err := d.lowFiles()
	if err != nil {
		return nil, err
	}
	return Diff(high, low, d.Opts)
}

// ScanASEPs runs the inside-the-box hidden-Registry detection (§3).
func (d *Detector) ScanASEPs() (*Report, error) {
	call, err := d.call()
	if err != nil {
		return nil, err
	}
	high, err := ScanASEPHigh(d.M, call)
	if err != nil {
		return nil, err
	}
	low, err := d.lowASEPs()
	if err != nil {
		return nil, err
	}
	return Diff(high, low, d.Opts)
}

// ScanProcesses runs the inside-the-box hidden-process detection (§4).
func (d *Detector) ScanProcesses() (*Report, error) {
	call, err := d.call()
	if err != nil {
		return nil, err
	}
	high, err := ScanProcsHigh(d.M, call)
	if err != nil {
		return nil, err
	}
	low, err := ScanProcsLow(d.M, d.Advanced)
	if err != nil {
		return nil, err
	}
	return Diff(high, low, d.Opts)
}

// ScanModules runs the inside-the-box hidden-module detection (§4). The
// pid set comes from the kernel truth so hidden processes' modules are
// covered.
func (d *Detector) ScanModules() (*Report, error) {
	call, err := d.call()
	if err != nil {
		return nil, err
	}
	pids, err := TruthPids(d.M)
	if err != nil {
		return nil, err
	}
	high, err := ScanModsHigh(d.M, call, pids)
	if err != nil {
		return nil, err
	}
	low, err := ScanModsLow(d.M, pids)
	if err != nil {
		return nil, err
	}
	return Diff(high, low, d.Opts)
}

// ScanAll runs all four detections and returns the reports in the
// paper's order: files, ASEP hooks, processes, modules. With
// Parallelism > 1, the eight scan units fan out across that many
// goroutines (clamped to eight); see scanAllParallel.
func (d *Detector) ScanAll() ([]*Report, error) {
	if d.Parallelism > 1 {
		lanes := d.Parallelism
		if lanes > numScanUnits {
			lanes = numScanUnits
		}
		return d.scanAllParallel(lanes)
	}
	type step struct {
		name string
		run  func() (*Report, error)
	}
	steps := []step{
		{"files", d.ScanFiles},
		{"ASEPs", d.ScanASEPs},
		{"processes", d.ScanProcesses},
		{"modules", d.ScanModules},
	}
	out := make([]*Report, 0, len(steps))
	for _, s := range steps {
		r, err := s.run()
		if err != nil {
			return nil, fmt.Errorf("core: %s scan: %w", s.name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// numScanUnits is the number of independent scan units in one sweep:
// the high and low scan of each of the four resource detections.
const numScanUnits = 8

// scanAllParallel is the fan-out sweep. The eight scan units are
// statically assigned round-robin to `lanes` virtual-time lanes
// (unit j runs on lane j mod lanes); each lane is one goroutine running
// its units in order and charging the lane's clock, so every unit's
// virtual cost and Elapsed are identical to the sequential path — the
// assignment never depends on goroutine scheduling. Joining the region
// advances the machine clock by the longest lane, which is exactly the
// wall-clock a set of concurrent scanners would have cost.
func (d *Detector) scanAllParallel(lanes int) ([]*Report, error) {
	// The truth pid list feeds both module units; compute it once, as the
	// sequential ScanModules does.
	pids, err := TruthPids(d.M)
	if err != nil {
		return nil, fmt.Errorf("core: modules scan: %w", err)
	}
	highUnit := func(scan func(*machine.Machine, *winapi.Call) (*Snapshot, error)) func(*vtime.Clock) (*Snapshot, error) {
		return func(clk *vtime.Clock) (*Snapshot, error) {
			call, err := d.callOn(clk)
			if err != nil {
				return nil, err
			}
			return scan(d.M, call)
		}
	}
	// Units in the paper's report order, high before low within each pair.
	// The raw-MFT unit dominates a cold sweep, so it additionally shards
	// its record decode across the same bound (the other lanes' units are
	// small and finish early, freeing cores for the decode shards).
	units := [numScanUnits]func(*vtime.Clock) (*Snapshot, error){
		highUnit(ScanFilesHigh),
		func(clk *vtime.Clock) (*Snapshot, error) { return d.lowFilesOn(clk, lanes) },
		highUnit(ScanASEPHigh),
		d.lowASEPsOn,
		highUnit(ScanProcsHigh),
		func(clk *vtime.Clock) (*Snapshot, error) { return scanProcsLowOn(d.M, d.Advanced, clk) },
		func(clk *vtime.Clock) (*Snapshot, error) {
			call, err := d.callOn(clk)
			if err != nil {
				return nil, err
			}
			return ScanModsHigh(d.M, call, pids)
		},
		func(clk *vtime.Clock) (*Snapshot, error) { return scanModsLowOn(d.M, pids, clk) },
	}
	var (
		snaps  [numScanUnits]*Snapshot
		errs   [numScanUnits]error
		region = d.M.Clock.Fork(lanes)
		wg     sync.WaitGroup
	)
	for lane := 0; lane < lanes; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			clk := region.Lane(lane)
			for u := lane; u < numScanUnits; u += lanes {
				snaps[u], errs[u] = units[u](clk)
			}
		}(lane)
	}
	wg.Wait()
	region.Join()
	names := [4]string{"files", "ASEPs", "processes", "modules"}
	out := make([]*Report, 0, len(names))
	for i, name := range names {
		high, low := snaps[2*i], snaps[2*i+1]
		if errs[2*i] != nil {
			return nil, fmt.Errorf("core: %s scan: %w", name, errs[2*i])
		}
		if errs[2*i+1] != nil {
			return nil, fmt.Errorf("core: %s scan: %w", name, errs[2*i+1])
		}
		r, err := Diff(high, low, d.Opts)
		if err != nil {
			return nil, fmt.Errorf("core: %s scan: %w", name, err)
		}
		out = append(out, r)
	}
	return out, nil
}
