package core

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
	"unicode/utf8"

	"ghostbuster/internal/hive"
	"ghostbuster/internal/kernel"
	"ghostbuster/internal/kmem"
	"ghostbuster/internal/machine"
	"ghostbuster/internal/ntfs"
	"ghostbuster/internal/registry"
	"ghostbuster/internal/vtime"
	"ghostbuster/internal/winapi"
)

// Cost constants for the virtual-time model, calibrated so that the
// paper's reported ranges fall out of its machine profiles: high-level
// file scans are seek-bound (~4 ms per represented file), low-level MFT
// reads are sequential, full-hive parsing is CPU-bound per key, and
// process scans cost per process. See EXPERIMENTS.md for the mapping.
const (
	costPerRepFileHigh = 4 * time.Millisecond
	costPerRepFileLow  = 50 * time.Microsecond
	costPerRepKeyParse = 200 * time.Microsecond
	costPerRepKeyHigh  = 400 * time.Microsecond
	costPerProcess     = 40 * time.Millisecond
	costPerModule      = 2 * time.Millisecond
	costDiffPerEntry   = 1 * time.Microsecond
)

// clockFor returns the clock a scan charges: the call's lane clock when
// one is set (parallel sweeps), otherwise the machine clock.
func clockFor(m *machine.Machine, call *winapi.Call) *vtime.Clock {
	if call != nil && call.Clock != nil {
		return call.Clock
	}
	return m.Clock
}

// upperAppend appends s uppercased to b. ASCII bytes upcase in place;
// any non-ASCII input falls back to strings.ToUpper for full Unicode
// semantics (rare for Windows paths, so the fallback allocation does
// not matter).
func upperAppend(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			return append(b, strings.ToUpper(s)...)
		}
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		b = append(b, c)
	}
	return b
}

// fileID canonicalizes a full path for diffing. Scanned paths are
// usually already canonical, so the common case returns the input
// without allocating (strings.ToUpper here used to dominate snapshot
// allocations on large file scans).
func fileID(path string) string {
	for i := 0; i < len(path); i++ {
		c := path[i]
		if c >= utf8.RuneSelf {
			return strings.ToUpper(path)
		}
		if 'a' <= c && c <= 'z' {
			b := make([]byte, 0, len(path))
			b = append(b, path[:i]...)
			return string(upperAppend(b, path[i:]))
		}
	}
	return path
}

// pidUpperID builds the "PID <n>: <UPPER>" diff identity without the
// fmt.Sprintf round trip the per-entry hot path used to pay.
func pidUpperID(pid uint64, s string) string {
	b := make([]byte, 0, 26+len(s))
	b = append(b, "PID "...)
	b = strconv.AppendUint(b, pid, 10)
	b = append(b, ':', ' ')
	return string(upperAppend(b, s))
}

func procDisplay(name string, pid uint64) string {
	b := make([]byte, 0, len(name)+27)
	b = append(b, name...)
	b = append(b, " (pid "...)
	b = strconv.AppendUint(b, pid, 10)
	b = append(b, ')')
	return string(b)
}

func modDisplay(pid uint64, path string) string {
	b := make([]byte, 0, 26+len(path))
	b = append(b, "pid "...)
	b = strconv.AppendUint(b, pid, 10)
	b = append(b, ':', ' ')
	b = append(b, path...)
	return string(b)
}

func baseDetail(base uint64) string {
	b := make([]byte, 0, 23)
	b = append(b, "base 0x"...)
	b = strconv.AppendUint(b, base, 16)
	return string(b)
}

// --- file scans -----------------------------------------------------------

// ScanFilesHigh performs the inside-the-box high-level file scan: the
// equivalent of "dir /s /b" issued by the given process through the
// FindFirst(Next)File chain.
func ScanFilesHigh(m *machine.Machine, call *winapi.Call) (*Snapshot, error) {
	clk := clockFor(m, call)
	sw := vtime.NewStopwatch(clk)
	snap := newSnapshot(KindFiles, ViewWin32Inside)
	entries, err := m.API.WalkTreeWin32(call, machine.Drive)
	if err != nil {
		return nil, fmt.Errorf("core: high-level file scan: %w", err)
	}
	snap.grow(len(entries))
	for _, e := range entries {
		snap.add(Entry{
			ID:      fileID(e.Path),
			Display: e.Path,
			Detail:  strconv.FormatUint(e.Size, 10) + " bytes",
		})
	}
	clk.ChargeOps(int64(float64(len(entries))*m.Profile.RepFileFactor()), costPerRepFileHigh)
	snap.Taken = clk.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

// ScanFilesLow performs the inside-the-box low-level file scan: parse
// the live device bytes (the Master File Table) directly, bypassing
// every API layer.
func ScanFilesLow(m *machine.Machine) (*Snapshot, error) {
	return scanFilesLowOn(m, m.Clock, 1)
}

// scanFilesLowOn is ScanFilesLow charging an explicit clock (a parallel
// sweep lane). The raw parse holds the volume's read lock, so it sees a
// consistent device image even while mutators run on other goroutines.
// workers shards the MFT record decode (see ntfs.RawScanParallel); the
// snapshot and its virtual-time charges are identical for any count.
func scanFilesLowOn(m *machine.Machine, clk *vtime.Clock, workers int) (*Snapshot, error) {
	sw := vtime.NewStopwatch(clk)
	var snap *Snapshot
	err := m.Disk.WithDevice(func(dev []byte) error {
		var err error
		snap, err = scanImageWorkers(dev, ViewRawMFT, workers)
		return err
	})
	if err != nil {
		return nil, err
	}
	chargeLowFileScan(m, clk, snap.Len())
	snap.Taken = clk.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

func chargeLowFileScan(m *machine.Machine, clk *vtime.Clock, entries int) {
	chargeRawMFTRead(clk, m.Profile, entries)
	clk.ChargeOps(int64(float64(entries)*m.Profile.RepFileFactor()), costPerRepFileLow)
}

// diskBytesPerSecond returns the profile's sequential read throughput in
// bytes per second, with the 30 MB/s fallback for unset profiles.
func diskBytesPerSecond(p machine.Profile) int64 {
	mbps := p.DiskMBps
	if mbps <= 0 {
		mbps = 30
	}
	return int64(mbps) << 20
}

// chargeRawMFTRead charges the sequential device read a raw MFT parse of
// the given entry count performs under profile p. Shared by the inside
// low-level scan and the outside image scans.
func chargeRawMFTRead(clock *vtime.Clock, p machine.Profile, entries int) {
	repBytes := int64(float64(entries)*p.RepFileFactor()) * ntfs.RecordSize
	clock.ChargeBytes(repBytes, diskBytesPerSecond(p))
}

// scanImage raw-parses a disk image into a file snapshot, labeling it
// with the given view. Used by the inside low-level scan, the WinPE
// outside scan, and the VM host scan.
func scanImage(image []byte, view View) (*Snapshot, error) {
	return scanImageWorkers(image, view, 1)
}

func scanImageWorkers(image []byte, view View, workers int) (*Snapshot, error) {
	snap := newSnapshot(KindFiles, view)
	raw, stats, err := ntfs.RawScanParallel(image, workers)
	if err != nil {
		return nil, fmt.Errorf("core: raw MFT scan: %w", err)
	}
	// On a damaged MFT, parent chains may be severed: an entry that looks
	// orphaned could be an innocent file whose ancestor record was lost.
	// Its reconstructed \$OrphanFiles path would differ from the
	// high-level view and surface as a false positive, so a scan that saw
	// corrupt records drops orphan entries and counts them (plus the
	// corrupt records themselves) as skipped. On an undamaged MFT, orphan
	// entries are kept: rootkit orphan-hiding must stay detectable.
	dropOrphans := stats.CorruptRecords > 0
	snap.Skipped += stats.CorruptRecords
	snap.grow(len(raw))
	for _, e := range raw {
		if dropOrphans && e.Orphan {
			snap.Skipped++
			continue
		}
		full := machine.FullPath(e.Path)
		detail := strconv.FormatUint(e.Size, 10) + " bytes, MFT record " + strconv.FormatUint(uint64(e.Record), 10)
		if e.Orphan {
			detail += " (orphaned parent chain)"
		}
		snap.add(Entry{ID: fileID(full), Display: full, Detail: detail})
	}
	return snap, nil
}

// ScanFilesImage is the outside-the-box file scan over a disk image
// obtained from a clean environment (WinPE boot or a powered-down VM's
// virtual disk).
func ScanFilesImage(image []byte, view View, clock *vtime.Clock, p machine.Profile) (*Snapshot, error) {
	sw := vtime.NewStopwatch(clock)
	snap, err := scanImage(image, view)
	if err != nil {
		return nil, err
	}
	chargeRawMFTRead(clock, p, snap.Len())
	snap.Taken = clock.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

// --- ASEP hook scans ----------------------------------------------------------

// ScanASEPHigh collects ASEP hooks through the Win32 Registry chain
// (what RegEdit shows).
func ScanASEPHigh(m *machine.Machine, call *winapi.Call) (*Snapshot, error) {
	clk := clockFor(m, call)
	sw := vtime.NewStopwatch(clk)
	snap := newSnapshot(KindASEPHooks, ViewWin32Inside)
	// CollectHooks treats a failed query as "key absent from this view"
	// and keeps going — correct for genuinely missing keys, but an
	// injected API fault swallowed that way would silently shrink the
	// high view and fabricate cross-view differences. Capture the
	// sentinel and fail the whole unit loudly instead.
	var injected error
	q := func(keyPath string) (registry.KeyView, error) {
		ks, err := m.API.QueryKeyWin32(call, keyPath)
		if err != nil {
			if injected == nil && errors.Is(err, winapi.ErrInjectedFault) {
				injected = err
			}
			return registry.KeyView{}, err
		}
		return keySnapshotToView(ks), nil
	}
	hooks, err := registry.CollectHooks(q, registry.StandardASEPs())
	if err == nil {
		err = injected
	}
	if err != nil {
		return nil, fmt.Errorf("core: high-level ASEP scan: %w", err)
	}
	snap.grow(len(hooks))
	for _, h := range hooks {
		snap.add(Entry{ID: h.ID(), Display: h.String(), Detail: h.ASEP})
	}
	clk.ChargeOps(int64(float64(len(hooks))*m.Profile.RepRegFactor()),
		time.Duration(float64(costPerRepKeyHigh)*m.Profile.CPUScale()))
	snap.Taken = clk.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

func keySnapshotToView(ks winapi.KeySnapshot) registry.KeyView {
	view := registry.KeyView{Subkeys: ks.Subkeys}
	for _, v := range ks.Values {
		view.Values = append(view.Values, registry.ValueView{
			Name: v.Name,
			Data: win32DataString(v),
		})
	}
	return view
}

// win32DataString renders value data under Win32 semantics: REG_SZ and
// REG_EXPAND_SZ strings terminate at the first NUL. Raw hive parsing
// reads the full counted data instead — the asymmetry behind the
// paper's one Registry false positive (§3: corrupted AppInit_DLLs data
// "did not show up in RegEdit, but appeared in the raw hive parsing").
func win32DataString(v winapi.KeyValue) string {
	s := hive.Value{Name: v.Name, Type: v.Type, Data: v.Data}.String()
	if v.Type == hive.RegSZ || v.Type == hive.RegExpandSZ {
		if i := strings.IndexByte(s, 0); i >= 0 {
			return s[:i]
		}
	}
	return s
}

// ScanASEPLow collects ASEP hooks by copying each mounted hive file and
// parsing it directly — "truth approximation" (paper §3), since
// sufficiently privileged ghostware could interfere with the copy.
func ScanASEPLow(m *machine.Machine) (*Snapshot, error) {
	return scanASEPLowOn(m, m.Clock)
}

// scanASEPLowOn is ScanASEPLow charging an explicit clock. Each hive is
// snapshot-copied under its own lock, so the offline parse is immune to
// concurrent Registry commits.
func scanASEPLowOn(m *machine.Machine, clk *vtime.Clock) (*Snapshot, error) {
	sw := vtime.NewStopwatch(clk)
	images := map[string][]byte{}
	totalParsedKeys := 0
	for _, root := range m.Reg.Roots() {
		h, ok := m.Reg.HiveAt(root)
		if !ok {
			continue
		}
		images[root] = h.Snapshot()
	}
	snap, parsed, err := scanASEPImages(images, ViewRawHive)
	if err != nil {
		return nil, err
	}
	totalParsedKeys += parsed
	// The low-level pass walks every cell of every hive; parsing is
	// CPU-bound, so the charge scales with the machine's CPU speed.
	perKey := time.Duration(float64(costPerRepKeyParse) * m.Profile.CPUScale())
	clk.ChargeOps(int64(float64(totalParsedKeys)*m.Profile.RepRegFactor()), perKey)
	snap.Taken = clk.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

// scanASEPImages parses hive images (root path -> file bytes) and
// collects ASEP hooks from the recovered trees. Used by the inside
// low-level scan and by the WinPE outside scan (which mounts the same
// files under a clean OS).
func scanASEPImages(images map[string][]byte, view View) (*Snapshot, int, error) {
	snap := newSnapshot(KindASEPHooks, view)
	parsedKeys := 0
	// Recover each hive tree into a path-indexed map.
	type parsedHive struct {
		keys map[string]registry.KeyView // upper-cased hive-relative path
	}
	trees := map[string]parsedHive{} // upper-cased root
	for root, img := range images {
		raw, stats, err := hive.Parse(img)
		if err != nil {
			return nil, 0, fmt.Errorf("core: parsing hive %s: %w", root, err)
		}
		parsedKeys += stats.KeysParsed
		ph := parsedHive{keys: make(map[string]registry.KeyView, len(raw)+1)}
		totalValues := 0
		for _, k := range raw {
			totalValues += len(k.Values)
		}
		// One value slab for the whole hive; each key's Values is a
		// capacity-clipped window into it, so building the tree costs one
		// allocation instead of one per value.
		slab := make([]registry.ValueView, 0, totalValues)
		for _, k := range raw {
			lo := len(slab)
			for _, v := range k.Values {
				slab = append(slab, registry.ValueView{Name: v.Name, Data: v.String()})
			}
			view := registry.KeyView{}
			if len(slab) > lo {
				view.Values = slab[lo:len(slab):len(slab)]
			}
			ph.keys[strings.ToUpper(k.Path)] = view
		}
		// Fill in subkey lists from the path structure: collect
		// (parent, name) edges, sort once, then write each parent's
		// fully-built subkey list with a single map store — the previous
		// per-path read-modify-write re-hashed every parent once per child
		// and re-sorted every key.
		type edge struct{ parent, name string }
		edges := make([]edge, 0, len(ph.keys))
		for path := range ph.keys {
			if path == "" {
				continue
			}
			parent := ""
			name := path
			if i := strings.LastIndexByte(path, '\\'); i >= 0 {
				parent, name = path[:i], path[i+1:]
			}
			edges = append(edges, edge{parent, name})
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].parent != edges[j].parent {
				return edges[i].parent < edges[j].parent
			}
			return edges[i].name < edges[j].name
		})
		names := make([]string, 0, len(edges))
		for _, e := range edges {
			names = append(names, e.name)
		}
		for lo := 0; lo < len(edges); {
			hi := lo + 1
			for hi < len(edges) && edges[hi].parent == edges[lo].parent {
				hi++
			}
			// Parents that only exist as path prefixes (no cell of their
			// own) are synthesized here, exactly as the map read on a
			// missing key used to do.
			pv := ph.keys[edges[lo].parent]
			pv.Subkeys = names[lo:hi:hi]
			ph.keys[edges[lo].parent] = pv
			lo = hi
		}
		trees[strings.ToUpper(root)] = ph
	}
	q := func(keyPath string) (registry.KeyView, error) {
		up := strings.ToUpper(keyPath)
		for root, ph := range trees {
			if up == root {
				return ph.keys[""], nil
			}
			if strings.HasPrefix(up, root+`\`) {
				rel := up[len(root)+1:]
				if kv, ok := ph.keys[rel]; ok {
					return kv, nil
				}
				return registry.KeyView{}, fmt.Errorf("core: key %s not in parsed hive", keyPath)
			}
		}
		return registry.KeyView{}, fmt.Errorf("core: no hive image covers %s", keyPath)
	}
	hooks, err := registry.CollectHooks(q, registry.StandardASEPs())
	if err != nil {
		return nil, 0, err
	}
	for _, h := range hooks {
		snap.add(Entry{ID: h.ID(), Display: h.String(), Detail: h.ASEP})
	}
	return snap, parsedKeys, nil
}

// ScanASEPImages is the outside-the-box ASEP scan over hive files read
// from the system drive under a clean OS.
func ScanASEPImages(images map[string][]byte, view View, clock *vtime.Clock, p machine.Profile) (*Snapshot, error) {
	sw := vtime.NewStopwatch(clock)
	snap, parsed, err := scanASEPImages(images, view)
	if err != nil {
		return nil, err
	}
	clock.ChargeOps(int64(float64(parsed)*p.RepRegFactor()), costPerRepKeyParse)
	snap.Taken = clock.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

// --- process scans --------------------------------------------------------------

func procID(pid uint64, name string) string { return pidUpperID(pid, name) }

// ScanProcsHigh lists processes through the full API chain (what Task
// Manager and tlist see).
func ScanProcsHigh(m *machine.Machine, call *winapi.Call) (*Snapshot, error) {
	clk := clockFor(m, call)
	sw := vtime.NewStopwatch(clk)
	snap := newSnapshot(KindProcesses, ViewWin32Inside)
	procs, err := m.API.EnumProcessesWin32(call)
	if err != nil {
		return nil, fmt.Errorf("core: high-level process scan: %w", err)
	}
	snap.grow(len(procs))
	for _, p := range procs {
		snap.add(Entry{ID: procID(p.Pid, p.Name), Display: procDisplay(p.Name, p.Pid), Detail: p.Path})
	}
	clk.ChargeOps(int64(len(procs)), costPerProcess/8)
	snap.Taken = clk.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

// ScanProcsLow traverses kernel structures directly via a driver. In
// normal mode it walks the Active Process List (sufficient for
// API-intercepting ghostware); in advanced mode it walks the CID table,
// which also exposes DKOM-hidden processes.
func ScanProcsLow(m *machine.Machine, advanced bool) (*Snapshot, error) {
	return scanProcsLowOn(m, advanced, m.Clock)
}

func scanProcsLowOn(m *machine.Machine, advanced bool, clk *vtime.Clock) (*Snapshot, error) {
	sw := vtime.NewStopwatch(clk)
	view := ViewKernelAPL
	walker := kernel.WalkActiveProcessList
	if advanced {
		view = ViewKernelCID
		walker = kernel.WalkCidProcesses
	}
	snap := newSnapshot(KindProcesses, view)
	procs, err := walker(m.Kern.ScanMem(), m.Kern.Layout())
	if err != nil {
		return nil, fmt.Errorf("core: low-level process scan: %w", err)
	}
	snap.grow(len(procs))
	for _, p := range procs {
		if p.Exited {
			continue
		}
		snap.add(Entry{ID: procID(p.Pid, p.Name), Display: procDisplay(p.Name, p.Pid), Detail: p.ImagePath})
	}
	clk.ChargeOps(int64(len(procs)), costPerProcess)
	snap.Taken = clk.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

// ScanProcsFromDump applies the same traversal to a crash-dump memory
// image (the paper's outside-the-box scan for volatile state).
func ScanProcsFromDump(mem kmem.Reader, layout kernel.Layout, advanced bool) (*Snapshot, error) {
	view := ViewCrashDump
	walker := kernel.WalkActiveProcessList
	if advanced {
		walker = kernel.WalkCidProcesses
	}
	snap := newSnapshot(KindProcesses, view)
	procs, err := walker(mem, layout)
	if err != nil {
		return nil, fmt.Errorf("core: crash-dump process scan: %w", err)
	}
	for _, p := range procs {
		if p.Exited {
			continue
		}
		snap.add(Entry{ID: procID(p.Pid, p.Name), Display: procDisplay(p.Name, p.Pid), Detail: p.ImagePath})
	}
	return snap, nil
}

// --- module scans ----------------------------------------------------------------

func modID(pid uint64, path string) string { return pidUpperID(pid, path) }

// ScanModsHigh enumerates the modules of every process on the given pid
// list through the API chain. Pids whose enumeration fails (the process
// may have exited mid-scan) are skipped and counted in snap.Skipped, so
// a sweep that lost half its processes is distinguishable from a clean
// one.
func ScanModsHigh(m *machine.Machine, call *winapi.Call, pids []uint64) (*Snapshot, error) {
	clk := clockFor(m, call)
	sw := vtime.NewStopwatch(clk)
	snap := newSnapshot(KindModules, ViewWin32Inside)
	total := 0
	for _, pid := range pids {
		mods, err := m.API.EnumModulesWin32(call, pid)
		if err != nil {
			// An injected fault must fail the unit, not shrink the high
			// view: a silently dropped pid's modules would all surface as
			// cross-view differences.
			if errors.Is(err, winapi.ErrInjectedFault) {
				return nil, fmt.Errorf("core: high-level module scan: %w", err)
			}
			snap.Skipped++
			continue
		}
		for _, mod := range mods {
			snap.add(Entry{ID: modID(pid, mod.Path), Display: modDisplay(pid, mod.Path), Detail: baseDetail(mod.Base)})
			total++
		}
	}
	clk.ChargeOps(int64(total), costPerModule)
	snap.Taken = clk.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

// ScanModsLow extracts the module truth for the same pids from the
// kernel's VAD image lists. Unreadable pids are skipped and counted,
// mirroring ScanModsHigh.
func ScanModsLow(m *machine.Machine, pids []uint64) (*Snapshot, error) {
	return scanModsLowOn(m, pids, m.Clock)
}

func scanModsLowOn(m *machine.Machine, pids []uint64, clk *vtime.Clock) (*Snapshot, error) {
	sw := vtime.NewStopwatch(clk)
	snap := newSnapshot(KindModules, ViewKernelVAD)
	total := 0
	for _, pid := range pids {
		mods, err := m.Kern.ModulesTruth(pid)
		if err != nil {
			snap.Skipped++
			continue
		}
		for _, mod := range mods {
			snap.add(Entry{ID: modID(pid, mod.Path), Display: modDisplay(pid, mod.Path), Detail: baseDetail(mod.Base)})
			total++
		}
	}
	clk.ChargeOps(int64(total), costPerModule)
	snap.Taken = clk.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

// NewModuleSnapshot creates an empty module snapshot for external
// builders (the crash-dump module scan assembles one from dump walks).
func NewModuleSnapshot(view View) *Snapshot { return newSnapshot(KindModules, view) }

// AddModuleEntry records one module occurrence in a module snapshot.
func AddModuleEntry(s *Snapshot, pid uint64, path string, base uint64) {
	s.add(Entry{ID: modID(pid, path), Display: modDisplay(pid, path), Detail: baseDetail(base)})
}

// TruthPids returns the pid set from the advanced (CID) view — the pid
// list GhostBuster feeds to the module scans so that modules of hidden
// processes are covered too.
func TruthPids(m *machine.Machine) ([]uint64, error) {
	procs, err := kernel.WalkCidProcesses(m.Kern.ScanMem(), m.Kern.Layout())
	if err != nil {
		return nil, err
	}
	pids := make([]uint64, 0, len(procs))
	for _, p := range procs {
		pids = append(pids, p.Pid)
	}
	return pids, nil
}
