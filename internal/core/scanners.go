package core

import (
	"errors"
	"fmt"
	"slices"
	"strconv"
	"strings"
	"time"
	"unicode/utf8"

	"ghostbuster/internal/hive"
	"ghostbuster/internal/kernel"
	"ghostbuster/internal/kmem"
	"ghostbuster/internal/machine"
	"ghostbuster/internal/ntfs"
	"ghostbuster/internal/registry"
	"ghostbuster/internal/vtime"
	"ghostbuster/internal/winapi"
)

// Cost constants for the virtual-time model, calibrated so that the
// paper's reported ranges fall out of its machine profiles: high-level
// file scans are seek-bound (~4 ms per represented file), low-level MFT
// reads are sequential, full-hive parsing is CPU-bound per key, and
// process scans cost per process. See EXPERIMENTS.md for the mapping.
const (
	costPerRepFileHigh = 4 * time.Millisecond
	costPerRepFileLow  = 50 * time.Microsecond
	costPerRepKeyParse = 200 * time.Microsecond
	costPerRepKeyHigh  = 400 * time.Microsecond
	costPerProcess     = 40 * time.Millisecond
	costPerModule      = 2 * time.Millisecond
	costDiffPerEntry   = 1 * time.Microsecond
)

// clockFor returns the clock a scan charges: the call's lane clock when
// one is set (parallel sweeps), otherwise the machine clock.
func clockFor(m *machine.Machine, call *winapi.Call) *vtime.Clock {
	if call != nil && call.Clock != nil {
		return call.Clock
	}
	return m.Clock
}

// upperAppend appends s uppercased to b. ASCII bytes upcase in place;
// any non-ASCII input falls back to strings.ToUpper for full Unicode
// semantics (rare for Windows paths, so the fallback allocation does
// not matter).
func upperAppend(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			return append(b, strings.ToUpper(s)...)
		}
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		b = append(b, c)
	}
	return b
}

// fileID canonicalizes a full path for diffing. Scanned paths are
// usually already canonical, so the common case returns the input
// without allocating (strings.ToUpper here used to dominate snapshot
// allocations on large file scans).
func fileID(path string) string {
	for i := 0; i < len(path); i++ {
		c := path[i]
		if c >= utf8.RuneSelf {
			return strings.ToUpper(path)
		}
		if 'a' <= c && c <= 'z' {
			b := make([]byte, 0, len(path))
			b = append(b, path[:i]...)
			return string(upperAppend(b, path[i:]))
		}
	}
	return path
}

// internFileID interns the canonical (uppercase) form of path without
// building an intermediate string: canonical paths intern directly, and
// mixed-case paths upcase into the reusable scratch buffer first. The
// returned buffer is the (possibly grown) scratch.
func internFileID(t *InternTable, buf []byte, path string) (Sym, []byte) {
	for i := 0; i < len(path); i++ {
		c := path[i]
		if c >= utf8.RuneSelf {
			return t.Intern(strings.ToUpper(path)), buf
		}
		if 'a' <= c && c <= 'z' {
			buf = append(buf[:0], path[:i]...)
			buf = upperAppend(buf, path[i:])
			return t.InternBytes(buf), buf
		}
	}
	return t.Intern(path), buf
}

// appendPidUpperID builds the "PID <n>: <UPPER>" diff identity into the
// scratch buffer.
func appendPidUpperID(b []byte, pid uint64, s string) []byte {
	b = append(b[:0], "PID "...)
	b = strconv.AppendUint(b, pid, 10)
	b = append(b, ':', ' ')
	return upperAppend(b, s)
}

// pidUpperID is the string form of appendPidUpperID, kept for the
// map-backed compatibility paths.
func pidUpperID(pid uint64, s string) string {
	return string(appendPidUpperID(make([]byte, 0, 26+len(s)), pid, s))
}

func appendProcDisplay(b []byte, name string, pid uint64) []byte {
	b = append(b[:0], name...)
	b = append(b, " (pid "...)
	b = strconv.AppendUint(b, pid, 10)
	return append(b, ')')
}

func appendModDisplay(b []byte, pid uint64, path string) []byte {
	b = append(b[:0], "pid "...)
	b = strconv.AppendUint(b, pid, 10)
	b = append(b, ':', ' ')
	return append(b, path...)
}

func appendBaseDetail(b []byte, base uint64) []byte {
	b = append(b[:0], "base 0x"...)
	return strconv.AppendUint(b, base, 16)
}

// --- file scans -----------------------------------------------------------

// ScanFilesHigh performs the inside-the-box high-level file scan: the
// equivalent of "dir /s /b" issued by the given process through the
// FindFirst(Next)File chain. It returns the map-backed adapter form;
// the detector pipeline uses the columnar core directly.
func ScanFilesHigh(m *machine.Machine, call *winapi.Call) (*Snapshot, error) {
	c, err := scanFilesHighC(m, call, NewInternTable())
	if err != nil {
		return nil, err
	}
	return c.Snapshot(), nil
}

func scanFilesHighC(m *machine.Machine, call *winapi.Call, t *InternTable) (*ColumnarSnapshot, error) {
	clk := clockFor(m, call)
	sw := vtime.NewStopwatch(clk)
	entries, err := m.API.WalkTreeWin32(call, machine.Drive)
	if err != nil {
		return nil, fmt.Errorf("core: high-level file scan: %w", err)
	}
	bld := NewColumnarBuilder(t, KindFiles, ViewWin32Inside, len(entries))
	var idBuf, detBuf []byte
	for _, e := range entries {
		var sym Sym
		sym, idBuf = internFileID(t, idBuf, e.Path)
		detBuf = strconv.AppendUint(detBuf[:0], e.Size, 10)
		detBuf = append(detBuf, " bytes"...)
		bld.AddRow(sym, e.Path, t.InternStrBytes(detBuf))
	}
	snap := bld.Build()
	clk.ChargeOps(int64(float64(len(entries))*m.Profile.RepFileFactor()), costPerRepFileHigh)
	snap.Taken = clk.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

// ScanFilesLow performs the inside-the-box low-level file scan: parse
// the live device bytes (the Master File Table) directly, bypassing
// every API layer.
func ScanFilesLow(m *machine.Machine) (*Snapshot, error) {
	c, err := scanFilesLowC(m, m.Clock, 1, NewInternTable())
	if err != nil {
		return nil, err
	}
	return c.Snapshot(), nil
}

// scanFilesLowC is the columnar low-level file scan charging an
// explicit clock (a parallel sweep lane). The raw parse holds the
// volume's read lock, so it sees a consistent device image even while
// mutators run on other goroutines, and the zero-copy record decode
// never outlives the lock. workers shards the MFT record decode (see
// ntfs.RawScanParallel); the snapshot and its virtual-time charges are
// identical for any count.
func scanFilesLowC(m *machine.Machine, clk *vtime.Clock, workers int, t *InternTable) (*ColumnarSnapshot, error) {
	sw := vtime.NewStopwatch(clk)
	var snap *ColumnarSnapshot
	err := m.Disk.WithDevice(func(dev []byte) error {
		var err error
		snap, err = scanImageC(dev, ViewRawMFT, workers, t)
		return err
	})
	if err != nil {
		return nil, err
	}
	chargeLowFileScan(m, clk, snap.Len())
	snap.Taken = clk.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

func chargeLowFileScan(m *machine.Machine, clk *vtime.Clock, entries int) {
	chargeRawMFTRead(clk, m.Profile, entries)
	clk.ChargeOps(int64(float64(entries)*m.Profile.RepFileFactor()), costPerRepFileLow)
}

// diskBytesPerSecond returns the profile's sequential read throughput in
// bytes per second, with the 30 MB/s fallback for unset profiles.
func diskBytesPerSecond(p machine.Profile) int64 {
	mbps := p.DiskMBps
	if mbps <= 0 {
		mbps = 30
	}
	return int64(mbps) << 20
}

// chargeRawMFTRead charges the sequential device read a raw MFT parse of
// the given entry count performs under profile p. Shared by the inside
// low-level scan and the outside image scans.
func chargeRawMFTRead(clock *vtime.Clock, p machine.Profile, entries int) {
	repBytes := int64(float64(entries)*p.RepFileFactor()) * ntfs.RecordSize
	clock.ChargeBytes(repBytes, diskBytesPerSecond(p))
}

// scanImageC raw-parses a disk image into a columnar file snapshot,
// labeling it with the given view. Used by the inside low-level scan,
// the WinPE outside scan, and the VM host scan.
func scanImageC(image []byte, view View, workers int, t *InternTable) (*ColumnarSnapshot, error) {
	return scanImageDriveC(image, view, machine.Drive, workers, t)
}

// scanImageDriveC is scanImageC with an explicit drive prefix, so the
// removable-device scan reconstructs E:\ paths instead of C:\ ones.
func scanImageDriveC(image []byte, view View, drive string, workers int, t *InternTable) (*ColumnarSnapshot, error) {
	raw, stats, err := ntfs.RawScanParallel(image, workers)
	if err != nil {
		return nil, fmt.Errorf("core: raw MFT scan: %w", err)
	}
	bld := NewColumnarBuilder(t, KindFiles, view, len(raw))
	snap := bld.Build() // placeholder; rebuilt below once rows are added
	// On a damaged MFT, parent chains may be severed: an entry that looks
	// orphaned could be an innocent file whose ancestor record was lost.
	// Its reconstructed \$OrphanFiles path would differ from the
	// high-level view and surface as a false positive, so a scan that saw
	// corrupt records drops orphan entries and counts them (plus the
	// corrupt records themselves) as skipped. On an undamaged MFT, orphan
	// entries are kept: rootkit orphan-hiding must stay detectable.
	dropOrphans := stats.CorruptRecords > 0
	skipped := stats.CorruptRecords
	var idBuf, dispBuf, detBuf []byte
	for _, e := range raw {
		if dropOrphans && e.Orphan {
			skipped++
			continue
		}
		dispBuf = append(dispBuf[:0], drive...)
		dispBuf = append(dispBuf, e.Path...)
		full := t.InternStrBytes(dispBuf)
		detBuf = strconv.AppendUint(detBuf[:0], e.Size, 10)
		detBuf = append(detBuf, " bytes, MFT record "...)
		detBuf = strconv.AppendUint(detBuf, uint64(e.Record), 10)
		if e.Orphan {
			detBuf = append(detBuf, " (orphaned parent chain)"...)
		}
		var sym Sym
		sym, idBuf = internFileID(t, idBuf, full)
		bld.AddRow(sym, full, t.InternStrBytes(detBuf))
	}
	snap = bld.Build()
	snap.Skipped = skipped
	return snap, nil
}

// ScanFilesImage is the outside-the-box file scan over a disk image
// obtained from a clean environment (WinPE boot or a powered-down VM's
// virtual disk).
func ScanFilesImage(image []byte, view View, clock *vtime.Clock, p machine.Profile) (*Snapshot, error) {
	sw := vtime.NewStopwatch(clock)
	snap, err := scanImageC(image, view, 1, NewInternTable())
	if err != nil {
		return nil, err
	}
	chargeRawMFTRead(clock, p, snap.Len())
	snap.Taken = clock.Now()
	snap.Elapsed = sw.Elapsed()
	return snap.Snapshot(), nil
}

// --- ASEP hook scans ----------------------------------------------------------

// ScanASEPHigh collects ASEP hooks through the Win32 Registry chain
// (what RegEdit shows).
func ScanASEPHigh(m *machine.Machine, call *winapi.Call) (*Snapshot, error) {
	c, err := scanASEPHighC(m, call, NewInternTable())
	if err != nil {
		return nil, err
	}
	return c.Snapshot(), nil
}

func scanASEPHighC(m *machine.Machine, call *winapi.Call, t *InternTable) (*ColumnarSnapshot, error) {
	clk := clockFor(m, call)
	sw := vtime.NewStopwatch(clk)
	// CollectHooks treats a failed query as "key absent from this view"
	// and keeps going — correct for genuinely missing keys, but an
	// injected API fault swallowed that way would silently shrink the
	// high view and fabricate cross-view differences. Capture the
	// sentinel and fail the whole unit loudly instead.
	var injected error
	q := func(keyPath string) (registry.KeyView, error) {
		ks, err := m.API.QueryKeyWin32(call, keyPath)
		if err != nil {
			if injected == nil && errors.Is(err, winapi.ErrInjectedFault) {
				injected = err
			}
			return registry.KeyView{}, err
		}
		return keySnapshotToView(ks), nil
	}
	hooks, err := registry.CollectHooks(q, registry.StandardASEPs())
	if err == nil {
		err = injected
	}
	if err != nil {
		return nil, fmt.Errorf("core: high-level ASEP scan: %w", err)
	}
	bld := NewColumnarBuilder(t, KindASEPHooks, ViewWin32Inside, len(hooks))
	for _, h := range hooks {
		bld.Add(h.ID(), h.String(), h.ASEP)
	}
	snap := bld.Build()
	clk.ChargeOps(int64(float64(len(hooks))*m.Profile.RepRegFactor()),
		time.Duration(float64(costPerRepKeyHigh)*m.Profile.CPUScale()))
	snap.Taken = clk.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

func keySnapshotToView(ks winapi.KeySnapshot) registry.KeyView {
	view := registry.KeyView{Subkeys: ks.Subkeys}
	for _, v := range ks.Values {
		view.Values = append(view.Values, registry.ValueView{
			Name: v.Name,
			Data: win32DataString(v),
		})
	}
	return view
}

// win32DataString renders value data under Win32 semantics: REG_SZ and
// REG_EXPAND_SZ strings terminate at the first NUL. Raw hive parsing
// reads the full counted data instead — the asymmetry behind the
// paper's one Registry false positive (§3: corrupted AppInit_DLLs data
// "did not show up in RegEdit, but appeared in the raw hive parsing").
func win32DataString(v winapi.KeyValue) string {
	s := hive.Value{Name: v.Name, Type: v.Type, Data: v.Data}.String()
	if v.Type == hive.RegSZ || v.Type == hive.RegExpandSZ {
		if i := strings.IndexByte(s, 0); i >= 0 {
			return s[:i]
		}
	}
	return s
}

// ScanASEPLow collects ASEP hooks by copying each mounted hive file and
// parsing it directly — "truth approximation" (paper §3), since
// sufficiently privileged ghostware could interfere with the copy.
func ScanASEPLow(m *machine.Machine) (*Snapshot, error) {
	c, err := scanASEPLowC(m, m.Clock, NewInternTable())
	if err != nil {
		return nil, err
	}
	return c.Snapshot(), nil
}

// scanASEPLowC is the columnar low-level ASEP scan charging an explicit
// clock. Each hive is snapshot-copied under its own lock, so the
// offline parse is immune to concurrent Registry commits.
func scanASEPLowC(m *machine.Machine, clk *vtime.Clock, t *InternTable) (*ColumnarSnapshot, error) {
	sw := vtime.NewStopwatch(clk)
	images := map[string][]byte{}
	for _, root := range m.Reg.Roots() {
		h, ok := m.Reg.HiveAt(root)
		if !ok {
			continue
		}
		images[root] = h.Snapshot()
	}
	snap, parsed, err := scanASEPImagesC(images, ViewRawHive, t)
	if err != nil {
		return nil, err
	}
	// The low-level pass walks every cell of every hive; parsing is
	// CPU-bound, so the charge scales with the machine's CPU speed.
	perKey := time.Duration(float64(costPerRepKeyParse) * m.Profile.CPUScale())
	clk.ChargeOps(int64(float64(parsed)*m.Profile.RepRegFactor()), perKey)
	snap.Taken = clk.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

// scanASEPImagesC parses hive images (root path -> file bytes) and
// collects ASEP hooks from the recovered trees. Used by the inside
// low-level scan and by the WinPE outside scan (which mounts the same
// files under a clean OS). The hive values are parsed zero-copy over
// the image bytes (hive.ParseBorrowed): every retained string is built
// here, so nothing borrowed escapes.
func scanASEPImagesC(images map[string][]byte, view View, t *InternTable) (*ColumnarSnapshot, int, error) {
	parsedKeys := 0
	// Recover each hive tree into a path-indexed map.
	type parsedHive struct {
		keys map[string]registry.KeyView // upper-cased hive-relative path
	}
	trees := map[string]parsedHive{} // upper-cased root
	for root, img := range images {
		raw, stats, err := hive.ParseBorrowed(img)
		if err != nil {
			return nil, 0, fmt.Errorf("core: parsing hive %s: %w", root, err)
		}
		parsedKeys += stats.KeysParsed
		ph := parsedHive{keys: make(map[string]registry.KeyView, len(raw)+1)}
		totalValues := 0
		for _, k := range raw {
			totalValues += len(k.Values)
		}
		// One value slab for the whole hive; each key's Values is a
		// capacity-clipped window into it, so building the tree costs one
		// allocation instead of one per value.
		slab := make([]registry.ValueView, 0, totalValues)
		for _, k := range raw {
			lo := len(slab)
			for _, v := range k.Values {
				slab = append(slab, registry.ValueView{Name: v.Name, Data: v.String()})
			}
			view := registry.KeyView{}
			if len(slab) > lo {
				view.Values = slab[lo:len(slab):len(slab)]
			}
			ph.keys[strings.ToUpper(k.Path)] = view
		}
		// Fill in subkey lists from the path structure: collect
		// (parent, name) edges, sort once, then write each parent's
		// fully-built subkey list with a single map store — the previous
		// per-path read-modify-write re-hashed every parent once per child
		// and re-sorted every key.
		type edge struct{ parent, name string }
		edges := make([]edge, 0, len(ph.keys))
		for path := range ph.keys {
			if path == "" {
				continue
			}
			parent := ""
			name := path
			if i := strings.LastIndexByte(path, '\\'); i >= 0 {
				parent, name = path[:i], path[i+1:]
			}
			edges = append(edges, edge{parent, name})
		}
		slices.SortFunc(edges, func(a, b edge) int {
			if a.parent != b.parent {
				return strings.Compare(a.parent, b.parent)
			}
			return strings.Compare(a.name, b.name)
		})
		names := make([]string, 0, len(edges))
		for _, e := range edges {
			names = append(names, e.name)
		}
		for lo := 0; lo < len(edges); {
			hi := lo + 1
			for hi < len(edges) && edges[hi].parent == edges[lo].parent {
				hi++
			}
			// Parents that only exist as path prefixes (no cell of their
			// own) are synthesized here, exactly as the map read on a
			// missing key used to do.
			pv := ph.keys[edges[lo].parent]
			pv.Subkeys = names[lo:hi:hi]
			ph.keys[edges[lo].parent] = pv
			lo = hi
		}
		trees[strings.ToUpper(root)] = ph
	}
	q := func(keyPath string) (registry.KeyView, error) {
		up := strings.ToUpper(keyPath)
		for root, ph := range trees {
			if up == root {
				return ph.keys[""], nil
			}
			if strings.HasPrefix(up, root+`\`) {
				rel := up[len(root)+1:]
				if kv, ok := ph.keys[rel]; ok {
					return kv, nil
				}
				return registry.KeyView{}, fmt.Errorf("core: key %s not in parsed hive", keyPath)
			}
		}
		return registry.KeyView{}, fmt.Errorf("core: no hive image covers %s", keyPath)
	}
	hooks, err := registry.CollectHooks(q, registry.StandardASEPs())
	if err != nil {
		return nil, 0, err
	}
	bld := NewColumnarBuilder(t, KindASEPHooks, view, len(hooks))
	for _, h := range hooks {
		bld.Add(h.ID(), h.String(), h.ASEP)
	}
	return bld.Build(), parsedKeys, nil
}

// ScanASEPImages is the outside-the-box ASEP scan over hive files read
// from the system drive under a clean OS.
func ScanASEPImages(images map[string][]byte, view View, clock *vtime.Clock, p machine.Profile) (*Snapshot, error) {
	sw := vtime.NewStopwatch(clock)
	snap, parsed, err := scanASEPImagesC(images, view, NewInternTable())
	if err != nil {
		return nil, err
	}
	clock.ChargeOps(int64(float64(parsed)*p.RepRegFactor()), costPerRepKeyParse)
	snap.Taken = clock.Now()
	snap.Elapsed = sw.Elapsed()
	return snap.Snapshot(), nil
}

// --- process scans --------------------------------------------------------------

func procID(pid uint64, name string) string { return pidUpperID(pid, name) }

// ScanProcsHigh lists processes through the full API chain (what Task
// Manager and tlist see).
func ScanProcsHigh(m *machine.Machine, call *winapi.Call) (*Snapshot, error) {
	c, err := scanProcsHighC(m, call, NewInternTable())
	if err != nil {
		return nil, err
	}
	return c.Snapshot(), nil
}

func scanProcsHighC(m *machine.Machine, call *winapi.Call, t *InternTable) (*ColumnarSnapshot, error) {
	clk := clockFor(m, call)
	sw := vtime.NewStopwatch(clk)
	procs, err := m.API.EnumProcessesWin32(call)
	if err != nil {
		return nil, fmt.Errorf("core: high-level process scan: %w", err)
	}
	bld := NewColumnarBuilder(t, KindProcesses, ViewWin32Inside, len(procs))
	var idBuf, dispBuf []byte
	for _, p := range procs {
		idBuf = appendPidUpperID(idBuf, p.Pid, p.Name)
		dispBuf = appendProcDisplay(dispBuf, p.Name, p.Pid)
		bld.AddRow(t.InternBytes(idBuf), t.InternStrBytes(dispBuf), p.Path)
	}
	snap := bld.Build()
	clk.ChargeOps(int64(len(procs)), costPerProcess/8)
	snap.Taken = clk.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

// ScanProcsLow traverses kernel structures directly via a driver. In
// normal mode it walks the Active Process List (sufficient for
// API-intercepting ghostware); in advanced mode it walks the CID table,
// which also exposes DKOM-hidden processes.
func ScanProcsLow(m *machine.Machine, advanced bool) (*Snapshot, error) {
	c, err := scanProcsLowC(m, advanced, m.Clock, NewInternTable())
	if err != nil {
		return nil, err
	}
	return c.Snapshot(), nil
}

func scanProcsLowC(m *machine.Machine, advanced bool, clk *vtime.Clock, t *InternTable) (*ColumnarSnapshot, error) {
	sw := vtime.NewStopwatch(clk)
	view := ViewKernelAPL
	walker := kernel.WalkActiveProcessList
	if advanced {
		view = ViewKernelCID
		walker = kernel.WalkCidProcesses
	}
	procs, err := walker(m.Kern.ScanMem(), m.Kern.Layout())
	if err != nil {
		return nil, fmt.Errorf("core: low-level process scan: %w", err)
	}
	bld := NewColumnarBuilder(t, KindProcesses, view, len(procs))
	var idBuf, dispBuf []byte
	for _, p := range procs {
		if p.Exited {
			continue
		}
		idBuf = appendPidUpperID(idBuf, p.Pid, p.Name)
		dispBuf = appendProcDisplay(dispBuf, p.Name, p.Pid)
		bld.AddRow(t.InternBytes(idBuf), t.InternStrBytes(dispBuf), p.ImagePath)
	}
	snap := bld.Build()
	clk.ChargeOps(int64(len(procs)), costPerProcess)
	snap.Taken = clk.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

// ScanProcsFromDump applies the same traversal to a crash-dump memory
// image (the paper's outside-the-box scan for volatile state).
func ScanProcsFromDump(mem kmem.Reader, layout kernel.Layout, advanced bool) (*Snapshot, error) {
	view := ViewCrashDump
	walker := kernel.WalkActiveProcessList
	if advanced {
		walker = kernel.WalkCidProcesses
	}
	snap := newSnapshot(KindProcesses, view)
	procs, err := walker(mem, layout)
	if err != nil {
		return nil, fmt.Errorf("core: crash-dump process scan: %w", err)
	}
	for _, p := range procs {
		if p.Exited {
			continue
		}
		snap.add(Entry{ID: procID(p.Pid, p.Name), Display: procDisplay(p.Name, p.Pid), Detail: p.ImagePath})
	}
	return snap, nil
}

func procDisplay(name string, pid uint64) string {
	return string(appendProcDisplay(make([]byte, 0, len(name)+27), name, pid))
}

func modDisplay(pid uint64, path string) string {
	return string(appendModDisplay(make([]byte, 0, 26+len(path)), pid, path))
}

func baseDetail(base uint64) string {
	return string(appendBaseDetail(make([]byte, 0, 23), base))
}

// --- module scans ----------------------------------------------------------------

func modID(pid uint64, path string) string { return pidUpperID(pid, path) }

// ScanModsHigh enumerates the modules of every process on the given pid
// list through the API chain. Pids whose enumeration fails (the process
// may have exited mid-scan) are skipped and counted in snap.Skipped, so
// a sweep that lost half its processes is distinguishable from a clean
// one.
func ScanModsHigh(m *machine.Machine, call *winapi.Call, pids []uint64) (*Snapshot, error) {
	c, err := scanModsHighC(m, call, pids, NewInternTable())
	if err != nil {
		return nil, err
	}
	return c.Snapshot(), nil
}

func scanModsHighC(m *machine.Machine, call *winapi.Call, pids []uint64, t *InternTable) (*ColumnarSnapshot, error) {
	clk := clockFor(m, call)
	sw := vtime.NewStopwatch(clk)
	bld := NewColumnarBuilder(t, KindModules, ViewWin32Inside, 0)
	skipped := 0
	total := 0
	var idBuf, dispBuf, detBuf []byte
	for _, pid := range pids {
		mods, err := m.API.EnumModulesWin32(call, pid)
		if err != nil {
			// An injected fault must fail the unit, not shrink the high
			// view: a silently dropped pid's modules would all surface as
			// cross-view differences.
			if errors.Is(err, winapi.ErrInjectedFault) {
				return nil, fmt.Errorf("core: high-level module scan: %w", err)
			}
			skipped++
			continue
		}
		for _, mod := range mods {
			idBuf = appendPidUpperID(idBuf, pid, mod.Path)
			dispBuf = appendModDisplay(dispBuf, pid, mod.Path)
			detBuf = appendBaseDetail(detBuf, mod.Base)
			bld.AddRow(t.InternBytes(idBuf), t.InternStrBytes(dispBuf), t.InternStrBytes(detBuf))
			total++
		}
	}
	snap := bld.Build()
	snap.Skipped = skipped
	clk.ChargeOps(int64(total), costPerModule)
	snap.Taken = clk.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

// ScanModsLow extracts the module truth for the same pids from the
// kernel's VAD image lists. Unreadable pids are skipped and counted,
// mirroring ScanModsHigh.
func ScanModsLow(m *machine.Machine, pids []uint64) (*Snapshot, error) {
	c, err := scanModsLowC(m, pids, m.Clock, NewInternTable())
	if err != nil {
		return nil, err
	}
	return c.Snapshot(), nil
}

func scanModsLowC(m *machine.Machine, pids []uint64, clk *vtime.Clock, t *InternTable) (*ColumnarSnapshot, error) {
	sw := vtime.NewStopwatch(clk)
	bld := NewColumnarBuilder(t, KindModules, ViewKernelVAD, 0)
	skipped := 0
	total := 0
	var idBuf, dispBuf, detBuf []byte
	for _, pid := range pids {
		mods, err := m.Kern.ModulesTruth(pid)
		if err != nil {
			skipped++
			continue
		}
		for _, mod := range mods {
			idBuf = appendPidUpperID(idBuf, pid, mod.Path)
			dispBuf = appendModDisplay(dispBuf, pid, mod.Path)
			detBuf = appendBaseDetail(detBuf, mod.Base)
			bld.AddRow(t.InternBytes(idBuf), t.InternStrBytes(dispBuf), t.InternStrBytes(detBuf))
			total++
		}
	}
	snap := bld.Build()
	snap.Skipped = skipped
	clk.ChargeOps(int64(total), costPerModule)
	snap.Taken = clk.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

// NewModuleSnapshot creates an empty module snapshot for external
// builders (the crash-dump module scan assembles one from dump walks).
func NewModuleSnapshot(view View) *Snapshot { return newSnapshot(KindModules, view) }

// AddModuleEntry records one module occurrence in a module snapshot.
func AddModuleEntry(s *Snapshot, pid uint64, path string, base uint64) {
	s.add(Entry{ID: modID(pid, path), Display: modDisplay(pid, path), Detail: baseDetail(base)})
}

// TruthPids returns the pid set from the advanced (CID) view — the pid
// list GhostBuster feeds to the module scans so that modules of hidden
// processes are covered too.
func TruthPids(m *machine.Machine) ([]uint64, error) {
	procs, err := kernel.WalkCidProcesses(m.Kern.ScanMem(), m.Kern.Layout())
	if err != nil {
		return nil, err
	}
	pids := make([]uint64, 0, len(procs))
	for _, p := range procs {
		pids = append(pids, p.Pid)
	}
	return pids, nil
}
