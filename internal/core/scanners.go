package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"ghostbuster/internal/hive"
	"ghostbuster/internal/kernel"
	"ghostbuster/internal/kmem"
	"ghostbuster/internal/machine"
	"ghostbuster/internal/ntfs"
	"ghostbuster/internal/registry"
	"ghostbuster/internal/vtime"
	"ghostbuster/internal/winapi"
)

// Cost constants for the virtual-time model, calibrated so that the
// paper's reported ranges fall out of its machine profiles: high-level
// file scans are seek-bound (~4 ms per represented file), low-level MFT
// reads are sequential, full-hive parsing is CPU-bound per key, and
// process scans cost per process. See EXPERIMENTS.md for the mapping.
const (
	costPerRepFileHigh = 4 * time.Millisecond
	costPerRepFileLow  = 50 * time.Microsecond
	costPerRepKeyParse = 200 * time.Microsecond
	costPerRepKeyHigh  = 400 * time.Microsecond
	costPerProcess     = 40 * time.Millisecond
	costPerModule      = 2 * time.Millisecond
	costDiffPerEntry   = 1 * time.Microsecond
)

// fileID canonicalizes a full path for diffing.
func fileID(path string) string { return strings.ToUpper(path) }

// --- file scans -----------------------------------------------------------

// ScanFilesHigh performs the inside-the-box high-level file scan: the
// equivalent of "dir /s /b" issued by the given process through the
// FindFirst(Next)File chain.
func ScanFilesHigh(m *machine.Machine, call *winapi.Call) (*Snapshot, error) {
	sw := vtime.NewStopwatch(m.Clock)
	snap := newSnapshot(KindFiles, ViewWin32Inside)
	entries, err := m.API.WalkTreeWin32(call, machine.Drive)
	if err != nil {
		return nil, fmt.Errorf("core: high-level file scan: %w", err)
	}
	snap.grow(len(entries))
	for _, e := range entries {
		snap.add(Entry{
			ID:      fileID(e.Path),
			Display: e.Path,
			Detail:  strconv.FormatUint(e.Size, 10) + " bytes",
		})
	}
	m.Clock.ChargeOps(int64(float64(len(entries))*m.Profile.RepFileFactor()), costPerRepFileHigh)
	snap.Taken = m.Clock.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

// ScanFilesLow performs the inside-the-box low-level file scan: parse
// the live device bytes (the Master File Table) directly, bypassing
// every API layer.
func ScanFilesLow(m *machine.Machine) (*Snapshot, error) {
	sw := vtime.NewStopwatch(m.Clock)
	snap, err := scanImage(m.Disk.Device(), ViewRawMFT)
	if err != nil {
		return nil, err
	}
	chargeLowFileScan(m, snap.Len())
	snap.Taken = m.Clock.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

func chargeLowFileScan(m *machine.Machine, entries int) {
	chargeRawMFTRead(m.Clock, m.Profile, entries)
	m.Clock.ChargeOps(int64(float64(entries)*m.Profile.RepFileFactor()), costPerRepFileLow)
}

// diskBytesPerSecond returns the profile's sequential read throughput in
// bytes per second, with the 30 MB/s fallback for unset profiles.
func diskBytesPerSecond(p machine.Profile) int64 {
	mbps := p.DiskMBps
	if mbps <= 0 {
		mbps = 30
	}
	return int64(mbps) << 20
}

// chargeRawMFTRead charges the sequential device read a raw MFT parse of
// the given entry count performs under profile p. Shared by the inside
// low-level scan and the outside image scans.
func chargeRawMFTRead(clock *vtime.Clock, p machine.Profile, entries int) {
	repBytes := int64(float64(entries)*p.RepFileFactor()) * ntfs.RecordSize
	clock.ChargeBytes(repBytes, diskBytesPerSecond(p))
}

// scanImage raw-parses a disk image into a file snapshot, labeling it
// with the given view. Used by the inside low-level scan, the WinPE
// outside scan, and the VM host scan.
func scanImage(image []byte, view View) (*Snapshot, error) {
	snap := newSnapshot(KindFiles, view)
	raw, _, err := ntfs.RawScan(image)
	if err != nil {
		return nil, fmt.Errorf("core: raw MFT scan: %w", err)
	}
	snap.grow(len(raw))
	for _, e := range raw {
		full := machine.FullPath(e.Path)
		detail := strconv.FormatUint(e.Size, 10) + " bytes, MFT record " + strconv.FormatUint(uint64(e.Record), 10)
		if e.Orphan {
			detail += " (orphaned parent chain)"
		}
		snap.add(Entry{ID: fileID(full), Display: full, Detail: detail})
	}
	return snap, nil
}

// ScanFilesImage is the outside-the-box file scan over a disk image
// obtained from a clean environment (WinPE boot or a powered-down VM's
// virtual disk).
func ScanFilesImage(image []byte, view View, clock *vtime.Clock, p machine.Profile) (*Snapshot, error) {
	sw := vtime.NewStopwatch(clock)
	snap, err := scanImage(image, view)
	if err != nil {
		return nil, err
	}
	chargeRawMFTRead(clock, p, snap.Len())
	snap.Taken = clock.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

// --- ASEP hook scans ----------------------------------------------------------

// ScanASEPHigh collects ASEP hooks through the Win32 Registry chain
// (what RegEdit shows).
func ScanASEPHigh(m *machine.Machine, call *winapi.Call) (*Snapshot, error) {
	sw := vtime.NewStopwatch(m.Clock)
	snap := newSnapshot(KindASEPHooks, ViewWin32Inside)
	q := func(keyPath string) (registry.KeyView, error) {
		ks, err := m.API.QueryKeyWin32(call, keyPath)
		if err != nil {
			return registry.KeyView{}, err
		}
		return keySnapshotToView(ks), nil
	}
	hooks, err := registry.CollectHooks(q, registry.StandardASEPs())
	if err != nil {
		return nil, fmt.Errorf("core: high-level ASEP scan: %w", err)
	}
	for _, h := range hooks {
		snap.add(Entry{ID: h.ID(), Display: h.String(), Detail: h.ASEP})
	}
	m.Clock.ChargeOps(int64(float64(len(hooks))*m.Profile.RepRegFactor()),
		time.Duration(float64(costPerRepKeyHigh)*m.Profile.CPUScale()))
	snap.Taken = m.Clock.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

func keySnapshotToView(ks winapi.KeySnapshot) registry.KeyView {
	view := registry.KeyView{Subkeys: ks.Subkeys}
	for _, v := range ks.Values {
		view.Values = append(view.Values, registry.ValueView{
			Name: v.Name,
			Data: win32DataString(v),
		})
	}
	return view
}

// win32DataString renders value data under Win32 semantics: REG_SZ and
// REG_EXPAND_SZ strings terminate at the first NUL. Raw hive parsing
// reads the full counted data instead — the asymmetry behind the
// paper's one Registry false positive (§3: corrupted AppInit_DLLs data
// "did not show up in RegEdit, but appeared in the raw hive parsing").
func win32DataString(v winapi.KeyValue) string {
	s := hive.Value{Name: v.Name, Type: v.Type, Data: v.Data}.String()
	if v.Type == hive.RegSZ || v.Type == hive.RegExpandSZ {
		if i := strings.IndexByte(s, 0); i >= 0 {
			return s[:i]
		}
	}
	return s
}

// ScanASEPLow collects ASEP hooks by copying each mounted hive file and
// parsing it directly — "truth approximation" (paper §3), since
// sufficiently privileged ghostware could interfere with the copy.
func ScanASEPLow(m *machine.Machine) (*Snapshot, error) {
	sw := vtime.NewStopwatch(m.Clock)
	images := map[string][]byte{}
	totalParsedKeys := 0
	for _, root := range m.Reg.Roots() {
		h, ok := m.Reg.HiveAt(root)
		if !ok {
			continue
		}
		images[root] = h.Snapshot()
	}
	snap, parsed, err := scanASEPImages(images, ViewRawHive)
	if err != nil {
		return nil, err
	}
	totalParsedKeys += parsed
	// The low-level pass walks every cell of every hive; parsing is
	// CPU-bound, so the charge scales with the machine's CPU speed.
	perKey := time.Duration(float64(costPerRepKeyParse) * m.Profile.CPUScale())
	m.Clock.ChargeOps(int64(float64(totalParsedKeys)*m.Profile.RepRegFactor()), perKey)
	snap.Taken = m.Clock.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

// scanASEPImages parses hive images (root path -> file bytes) and
// collects ASEP hooks from the recovered trees. Used by the inside
// low-level scan and by the WinPE outside scan (which mounts the same
// files under a clean OS).
func scanASEPImages(images map[string][]byte, view View) (*Snapshot, int, error) {
	snap := newSnapshot(KindASEPHooks, view)
	parsedKeys := 0
	// Recover each hive tree into a path-indexed map.
	type parsedHive struct {
		keys map[string]registry.KeyView // upper-cased hive-relative path
	}
	trees := map[string]parsedHive{} // upper-cased root
	for root, img := range images {
		raw, stats, err := hive.Parse(img)
		if err != nil {
			return nil, 0, fmt.Errorf("core: parsing hive %s: %w", root, err)
		}
		parsedKeys += stats.KeysParsed
		ph := parsedHive{keys: map[string]registry.KeyView{}}
		for _, k := range raw {
			view := registry.KeyView{}
			for _, v := range k.Values {
				view.Values = append(view.Values, registry.ValueView{Name: v.Name, Data: v.String()})
			}
			ph.keys[strings.ToUpper(k.Path)] = view
		}
		// Fill in subkey lists from the path structure.
		for path := range ph.keys {
			if path == "" {
				continue
			}
			parent := ""
			name := path
			if i := strings.LastIndexByte(path, '\\'); i >= 0 {
				parent, name = path[:i], path[i+1:]
			}
			pv := ph.keys[parent]
			pv.Subkeys = append(pv.Subkeys, name)
			ph.keys[parent] = pv
		}
		for _, kv := range ph.keys {
			sort.Strings(kv.Subkeys)
		}
		trees[strings.ToUpper(root)] = ph
	}
	q := func(keyPath string) (registry.KeyView, error) {
		up := strings.ToUpper(keyPath)
		for root, ph := range trees {
			if up == root {
				return ph.keys[""], nil
			}
			if strings.HasPrefix(up, root+`\`) {
				rel := up[len(root)+1:]
				if kv, ok := ph.keys[rel]; ok {
					return kv, nil
				}
				return registry.KeyView{}, fmt.Errorf("core: key %s not in parsed hive", keyPath)
			}
		}
		return registry.KeyView{}, fmt.Errorf("core: no hive image covers %s", keyPath)
	}
	hooks, err := registry.CollectHooks(q, registry.StandardASEPs())
	if err != nil {
		return nil, 0, err
	}
	for _, h := range hooks {
		snap.add(Entry{ID: h.ID(), Display: h.String(), Detail: h.ASEP})
	}
	return snap, parsedKeys, nil
}

// ScanASEPImages is the outside-the-box ASEP scan over hive files read
// from the system drive under a clean OS.
func ScanASEPImages(images map[string][]byte, view View, clock *vtime.Clock, p machine.Profile) (*Snapshot, error) {
	sw := vtime.NewStopwatch(clock)
	snap, parsed, err := scanASEPImages(images, view)
	if err != nil {
		return nil, err
	}
	clock.ChargeOps(int64(float64(parsed)*p.RepRegFactor()), costPerRepKeyParse)
	snap.Taken = clock.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

// --- process scans --------------------------------------------------------------

func procID(pid uint64, name string) string {
	return fmt.Sprintf("PID %d: %s", pid, strings.ToUpper(name))
}

// ScanProcsHigh lists processes through the full API chain (what Task
// Manager and tlist see).
func ScanProcsHigh(m *machine.Machine, call *winapi.Call) (*Snapshot, error) {
	sw := vtime.NewStopwatch(m.Clock)
	snap := newSnapshot(KindProcesses, ViewWin32Inside)
	procs, err := m.API.EnumProcessesWin32(call)
	if err != nil {
		return nil, fmt.Errorf("core: high-level process scan: %w", err)
	}
	for _, p := range procs {
		snap.add(Entry{ID: procID(p.Pid, p.Name), Display: fmt.Sprintf("%s (pid %d)", p.Name, p.Pid), Detail: p.Path})
	}
	m.Clock.ChargeOps(int64(len(procs)), costPerProcess/8)
	snap.Taken = m.Clock.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

// ScanProcsLow traverses kernel structures directly via a driver. In
// normal mode it walks the Active Process List (sufficient for
// API-intercepting ghostware); in advanced mode it walks the CID table,
// which also exposes DKOM-hidden processes.
func ScanProcsLow(m *machine.Machine, advanced bool) (*Snapshot, error) {
	sw := vtime.NewStopwatch(m.Clock)
	view := ViewKernelAPL
	walker := kernel.WalkActiveProcessList
	if advanced {
		view = ViewKernelCID
		walker = kernel.WalkCidProcesses
	}
	snap := newSnapshot(KindProcesses, view)
	procs, err := walker(m.Kern.Mem, m.Kern.Layout())
	if err != nil {
		return nil, fmt.Errorf("core: low-level process scan: %w", err)
	}
	for _, p := range procs {
		if p.Exited {
			continue
		}
		snap.add(Entry{ID: procID(p.Pid, p.Name), Display: fmt.Sprintf("%s (pid %d)", p.Name, p.Pid), Detail: p.ImagePath})
	}
	m.Clock.ChargeOps(int64(len(procs)), costPerProcess)
	snap.Taken = m.Clock.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

// ScanProcsFromDump applies the same traversal to a crash-dump memory
// image (the paper's outside-the-box scan for volatile state).
func ScanProcsFromDump(mem kmem.Reader, layout kernel.Layout, advanced bool) (*Snapshot, error) {
	view := ViewCrashDump
	walker := kernel.WalkActiveProcessList
	if advanced {
		walker = kernel.WalkCidProcesses
	}
	snap := newSnapshot(KindProcesses, view)
	procs, err := walker(mem, layout)
	if err != nil {
		return nil, fmt.Errorf("core: crash-dump process scan: %w", err)
	}
	for _, p := range procs {
		if p.Exited {
			continue
		}
		snap.add(Entry{ID: procID(p.Pid, p.Name), Display: fmt.Sprintf("%s (pid %d)", p.Name, p.Pid), Detail: p.ImagePath})
	}
	return snap, nil
}

// --- module scans ----------------------------------------------------------------

func modID(pid uint64, path string) string {
	return fmt.Sprintf("PID %d: %s", pid, strings.ToUpper(path))
}

// ScanModsHigh enumerates the modules of every process on the given pid
// list through the API chain.
func ScanModsHigh(m *machine.Machine, call *winapi.Call, pids []uint64) (*Snapshot, error) {
	sw := vtime.NewStopwatch(m.Clock)
	snap := newSnapshot(KindModules, ViewWin32Inside)
	total := 0
	for _, pid := range pids {
		mods, err := m.API.EnumModulesWin32(call, pid)
		if err != nil {
			continue // process may have exited mid-scan
		}
		for _, mod := range mods {
			snap.add(Entry{ID: modID(pid, mod.Path), Display: fmt.Sprintf("pid %d: %s", pid, mod.Path), Detail: fmt.Sprintf("base %#x", mod.Base)})
			total++
		}
	}
	m.Clock.ChargeOps(int64(total), costPerModule)
	snap.Taken = m.Clock.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

// ScanModsLow extracts the module truth for the same pids from the
// kernel's VAD image lists.
func ScanModsLow(m *machine.Machine, pids []uint64) (*Snapshot, error) {
	sw := vtime.NewStopwatch(m.Clock)
	snap := newSnapshot(KindModules, ViewKernelVAD)
	total := 0
	for _, pid := range pids {
		mods, err := m.Kern.ModulesTruth(pid)
		if err != nil {
			continue
		}
		for _, mod := range mods {
			snap.add(Entry{ID: modID(pid, mod.Path), Display: fmt.Sprintf("pid %d: %s", pid, mod.Path), Detail: fmt.Sprintf("base %#x", mod.Base)})
			total++
		}
	}
	m.Clock.ChargeOps(int64(total), costPerModule)
	snap.Taken = m.Clock.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

// NewModuleSnapshot creates an empty module snapshot for external
// builders (the crash-dump module scan assembles one from dump walks).
func NewModuleSnapshot(view View) *Snapshot { return newSnapshot(KindModules, view) }

// AddModuleEntry records one module occurrence in a module snapshot.
func AddModuleEntry(s *Snapshot, pid uint64, path string, base uint64) {
	s.add(Entry{ID: modID(pid, path), Display: fmt.Sprintf("pid %d: %s", pid, path), Detail: fmt.Sprintf("base %#x", base)})
}

// TruthPids returns the pid set from the advanced (CID) view — the pid
// list GhostBuster feeds to the module scans so that modules of hidden
// processes are covered too.
func TruthPids(m *machine.Machine) ([]uint64, error) {
	procs, err := m.Kern.ProcessesAdvanced()
	if err != nil {
		return nil, err
	}
	pids := make([]uint64, 0, len(procs))
	for _, p := range procs {
		pids = append(pids, p.Pid)
	}
	return pids, nil
}
