package core

import (
	"strings"
	"testing"

	"ghostbuster/internal/winapi"
)

func TestDriverDiffCleanMachine(t *testing.T) {
	m := mustMachine(t)
	r, err := NewDetector(m).ScanDrivers()
	if err != nil {
		t.Fatal(err)
	}
	if r.Infected() || len(r.Phantom) != 0 {
		t.Errorf("clean driver diff: %+v / %+v", r.Hidden, r.Phantom)
	}
}

func TestDriverDiffExposesHiddenDriver(t *testing.T) {
	m := mustMachine(t)
	if _, err := m.Kern.LoadDriver(`C:\WINDOWS\system32\drivers\stealth.sys`); err != nil {
		t.Fatal(err)
	}
	m.API.Install(winapi.NewDriverHideHook("stealth", winapi.LevelNtdll, "driver filter", nil,
		func(call *winapi.Call, d winapi.ModEntry) bool {
			return strings.Contains(strings.ToUpper(d.Path), "STEALTH.SYS")
		}))
	r, err := NewDetector(m).ScanDrivers()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) != 1 || !strings.Contains(r.Hidden[0].ID, "STEALTH.SYS") {
		t.Fatalf("hidden drivers = %+v", r.Hidden)
	}
}

func TestADSExposedByFileDiff(t *testing.T) {
	m := mustMachine(t)
	if err := m.DropFile(`C:\notes.txt`, []byte("innocent")); err != nil {
		t.Fatal(err)
	}
	if err := m.Disk.CreateStream(`\notes.txt`, "payload.exe", []byte("MZ evil")); err != nil {
		t.Fatal(err)
	}
	r, err := NewDetector(m).ScanFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) != 1 || r.Hidden[0].ID != `C:\NOTES.TXT:PAYLOAD.EXE` {
		t.Fatalf("hidden = %+v", r.Hidden)
	}
}

func TestBenignZoneIdentifierIsNoiseNotFinding(t *testing.T) {
	m := mustMachine(t)
	if err := m.DropFile(`C:\download.zip`, []byte("PK")); err != nil {
		t.Fatal(err)
	}
	if err := m.Disk.CreateStream(`\download.zip`, "Zone.Identifier", []byte("[ZoneTransfer]")); err != nil {
		t.Fatal(err)
	}
	r, err := NewDetector(m).ScanFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) != 0 {
		t.Errorf("zone marker flagged as hidden: %+v", r.Hidden)
	}
	if len(r.Noise) != 1 || r.Noise[0].Reason != "Zone.Identifier stream" {
		t.Errorf("noise = %+v", r.Noise)
	}
}

func TestDeletedFileForensics(t *testing.T) {
	m := mustMachine(t)
	if err := m.DropFile(`C:\hxdef\hxdef100.exe`, []byte("MZ")); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveFile(`C:\hxdef\hxdef100.exe`); err != nil {
		t.Fatal(err)
	}
	deleted, err := ScanDeletedFiles(m)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range deleted {
		if d.Name == "hxdef100.exe" {
			found = true
		}
	}
	if !found {
		t.Errorf("removed rootkit file not recoverable; deleted = %+v", deleted)
	}
}
