package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
)

func TestInternTableBasics(t *testing.T) {
	tab := NewInternTable()
	a := tab.Intern("alpha")
	b := tab.Intern("beta")
	if a == b {
		t.Fatal("distinct strings must get distinct symbols")
	}
	if tab.Intern("alpha") != a {
		t.Fatal("re-interning must return the same symbol")
	}
	if tab.InternBytes([]byte("alpha")) != a {
		t.Fatal("InternBytes must agree with Intern")
	}
	if tab.Str(a) != "alpha" || tab.Str(b) != "beta" {
		t.Fatal("Str must resolve symbols")
	}
	if got := tab.InternStrBytes([]byte("beta")); got != "beta" {
		t.Fatalf("InternStrBytes = %q", got)
	}
	if sym, ok := tab.Lookup("beta"); !ok || sym != b {
		t.Fatal("Lookup must find interned strings")
	}
	if _, ok := tab.Lookup("gamma"); ok {
		t.Fatal("Lookup must miss absent strings")
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
}

// TestInternBytesWarmZeroAlloc pins the warm interning path: once an
// identity is in the table, re-interning its bytes must not allocate.
// This is what makes warm snapshot rebuilds allocation-free.
func TestInternBytesWarmZeroAlloc(t *testing.T) {
	tab := NewInternTable()
	id := []byte(`C:\WINDOWS\SYSTEM32\NTOSKRNL.EXE`)
	tab.InternBytes(id)
	if got := testing.AllocsPerRun(100, func() {
		tab.InternBytes(id)
	}); got != 0 {
		t.Errorf("warm InternBytes allocs = %v, want 0", got)
	}
	if got := testing.AllocsPerRun(100, func() {
		if tab.InternStrBytes(id) == "" {
			t.Fatal("empty resolution")
		}
	}); got != 0 {
		t.Errorf("warm InternStrBytes allocs = %v, want 0", got)
	}
}

// TestColumnarBuilderLastWins pins the duplicate-ID semantics to the map
// engine's: the last-added row of an ID wins.
func TestColumnarBuilderLastWins(t *testing.T) {
	tab := NewInternTable()
	b := NewColumnarBuilder(tab, KindFiles, ViewRawMFT, 4)
	b.Add(`C:\A`, "first", "d1")
	b.Add(`C:\B`, "other", "d2")
	b.Add(`C:\A`, "second", "d3")
	c := b.Build()
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	e, ok := c.Lookup(`C:\A`)
	if !ok || e.Display != "second" || e.Detail != "d3" {
		t.Fatalf("last add must win, got %+v", e)
	}
	// The adapter must agree with a map snapshot built the same way.
	m := newSnapshot(KindFiles, ViewRawMFT)
	m.add(Entry{ID: `C:\A`, Display: "first", Detail: "d1"})
	m.add(Entry{ID: `C:\B`, Display: "other", Detail: "d2"})
	m.add(Entry{ID: `C:\A`, Display: "second", Detail: "d3"})
	if !reflect.DeepEqual(c.Snapshot().Entries, m.Entries) {
		t.Fatalf("adapter mismatch:\ncolumnar %+v\nmap      %+v", c.Snapshot().Entries, m.Entries)
	}
}

// buildPair builds two columnar snapshots over one table: a truth side
// with n entries and a high side missing every ID in hide and carrying
// every ID in phantom.
func buildPair(tab *InternTable, n int, hide, phantom map[int]bool) (high, low *ColumnarSnapshot) {
	hb := NewColumnarBuilder(tab, KindFiles, ViewWin32Inside, n)
	lb := NewColumnarBuilder(tab, KindFiles, ViewRawMFT, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf(`C:\FILES\FILE%06d.DAT`, i)
		if !hide[i] {
			hb.Add(id, id, "1 bytes")
		}
		lb.Add(id, id, "1 bytes")
	}
	for i := range phantom {
		id := fmt.Sprintf(`C:\PHANTOM\GHOST%06d.TMP`, i)
		hb.Add(id, id, "0 bytes")
	}
	return hb.Build(), lb.Build()
}

// TestDiffColumnarMatchesMapEngine is the in-package differential check:
// the merge-join engine and the map engine must produce byte-identical
// sealed reports on the same inputs, including hidden, phantom, noise,
// and mass-hiding shapes. (The corpus-wide version lives in ghostfuzz.)
func TestDiffColumnarMatchesMapEngine(t *testing.T) {
	cases := []struct {
		name    string
		hide    map[int]bool
		phantom map[int]bool
		opts    DiffOptions
	}{
		{"clean", nil, nil, DiffOptions{}},
		{"hidden", map[int]bool{3: true, 400: true, 999: true}, nil, DiffOptions{}},
		{"phantom", nil, map[int]bool{1: true, 2: true}, DiffOptions{}},
		{"both", map[int]bool{0: true, 512: true}, map[int]bool{7: true}, DiffOptions{}},
		{"mass-hiding", func() map[int]bool {
			m := map[int]bool{}
			for i := 0; i < 200; i++ {
				m[i] = true
			}
			return m
		}(), nil, DiffOptions{}},
		{"noise-filtered", map[int]bool{5: true}, nil,
			DiffOptions{NoiseFilters: BaselineNoiseFilters()}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tab := NewInternTable()
			high, low := buildPair(tab, 1000, tc.hide, tc.phantom)
			colR, err := DiffColumnar(high, low, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			mapR, err := Diff(high.Snapshot(), low.Snapshot(), tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			colR.Seal()
			mapR.Seal()
			colJSON, _ := json.Marshal(colR)
			mapJSON, _ := json.Marshal(mapR)
			if !bytes.Equal(colJSON, mapJSON) {
				t.Fatalf("engines disagree:\ncolumnar %s\nmap      %s", colJSON, mapJSON)
			}
		})
	}
}

// TestDiffColumnarTableMismatchFallsBack: snapshots from different
// tables have incomparable symbol orders; DiffColumnar must still
// return the correct (map-engine) result.
func TestDiffColumnarTableMismatchFallsBack(t *testing.T) {
	t1, t2 := NewInternTable(), NewInternTable()
	hb := NewColumnarBuilder(t1, KindFiles, ViewWin32Inside, 2)
	hb.Add(`C:\B`, `C:\B`, "")
	lb := NewColumnarBuilder(t2, KindFiles, ViewRawMFT, 2)
	lb.Add(`C:\B`, `C:\B`, "")
	lb.Add(`C:\A`, `C:\A`, "") // interned later in t2, so symbol order != ID order
	r, err := DiffColumnar(hb.Build(), lb.Build(), DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) != 1 || r.Hidden[0].ID != `C:\A` {
		t.Fatalf("fallback diff wrong: %+v", r.Hidden)
	}
	var rr Report
	if err := DiffColumnarInto(&rr, hb.Build(), lb.Build(), DiffOptions{}); err == nil {
		t.Fatal("DiffColumnarInto must refuse mismatched tables")
	}
}

func TestDiffColumnarKindMismatch(t *testing.T) {
	tab := NewInternTable()
	h := NewColumnarBuilder(tab, KindFiles, ViewWin32Inside, 0).Build()
	l := NewColumnarBuilder(tab, KindProcesses, ViewKernelCID, 0).Build()
	if _, err := DiffColumnar(h, l, DiffOptions{}); err == nil {
		t.Fatal("kind mismatch must error")
	}
}

// TestWarmColumnarDiffZeroAlloc is the tentpole's acceptance pin: a warm
// incremental diff of a large unchanged volume — the every-sweep fleet
// case, where both sides resolve to already-interned identities — must
// allocate nothing.
func TestWarmColumnarDiffZeroAlloc(t *testing.T) {
	tab := NewInternTable()
	high, low := buildPair(tab, 50_000, nil, nil)
	var r Report
	// Prime once (the Report itself is reused across sweeps).
	if err := DiffColumnarInto(&r, high, low, DiffOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(10, func() {
		if err := DiffColumnarInto(&r, high, low, DiffOptions{}); err != nil || r.Infected() {
			t.Fatal("warm diff must stay clean")
		}
	}); got != 0 {
		t.Errorf("warm columnar diff allocs = %v, want 0", got)
	}
}

// TestSortFindingsZeroAllocClean pins the slices.SortFunc migration: the
// clean case (nothing to sort) must not allocate, unlike the old
// sort.Slice closure form.
func TestSortFindingsZeroAllocClean(t *testing.T) {
	var empty []Finding
	one := []Finding{{ID: "X"}}
	two := []Finding{{ID: "B"}, {ID: "A"}}
	if got := testing.AllocsPerRun(100, func() {
		sortFindings(empty)
		sortFindings(one)
		sortFindings(two)
	}); got != 0 {
		t.Errorf("sortFindings allocs = %v, want 0", got)
	}
	if two[0].ID != "A" || two[1].ID != "B" {
		t.Fatalf("sortFindings did not sort: %+v", two)
	}
}

// TestSnapshotJSONRoundTrip pins the Snapshot wire format across the
// columnar migration: all fields tagged, round-trip lossless.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	tab := NewInternTable()
	b := NewColumnarBuilder(tab, KindASEPHooks, ViewRawHive, 2)
	b.Add("HKLM\\RUN\\EVIL", "HKLM\\Run\\evil", "evil.exe")
	b.Add("HKLM\\RUN\\OK", "HKLM\\Run\\ok", "ok.exe")
	c := b.Build()
	c.Taken = 1234
	c.Elapsed = 5678
	c.Skipped = 2
	snap := c.Snapshot()

	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var keys map[string]json.RawMessage
	if err := json.Unmarshal(data, &keys); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"kind", "view", "takenNs", "entries", "elapsedNs", "skipped"} {
		if _, ok := keys[k]; !ok {
			t.Errorf("snapshot JSON missing %q key: %s", k, data)
		}
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, snap) {
		t.Fatalf("round trip lost data:\nin  %+v\nout %+v", snap, &back)
	}
}

// FuzzInternTable drives the interning table with arbitrary string
// pairs: symbols must collide exactly when the strings are equal, and
// every symbol must resolve back to its exact string — over both the
// string and byte entry points.
func FuzzInternTable(f *testing.F) {
	f.Add("", "")
	f.Add("a", "a")
	f.Add("a", "b")
	f.Add(`C:\WINDOWS`, `C:\WINDOWS\SYSTEM32`)
	f.Add("x\x00y", "x\x00z")
	f.Add("\xff\xfe", "\xff")
	f.Fuzz(func(t *testing.T, a, b string) {
		tab := NewInternTable()
		sa := tab.Intern(a)
		sb := tab.InternBytes([]byte(b))
		if (sa == sb) != (a == b) {
			t.Fatalf("collision mismatch: Intern(%q)=%d InternBytes(%q)=%d", a, sa, b, sb)
		}
		if tab.Str(sa) != a || tab.Str(sb) != b {
			t.Fatalf("resolution mismatch: %q->%q, %q->%q", a, tab.Str(sa), b, tab.Str(sb))
		}
		if tab.Intern(a) != sa || tab.Intern(b) != sb {
			t.Fatal("symbols must be stable across re-interning")
		}
		if tab.InternStrBytes([]byte(a)) != a {
			t.Fatal("InternStrBytes must return the exact string")
		}
		// Symbols index densely from zero — the columnar sort depends on a
		// total order, and Str depends on in-range symbols.
		want := 1
		if a != b {
			want = 2
		}
		if tab.Len() != want {
			t.Fatalf("Len = %d, want %d", tab.Len(), want)
		}
	})
}
