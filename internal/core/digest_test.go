package core

import (
	"strings"
	"testing"
	"time"
)

func sampleReport() *Report {
	return &Report{
		Kind: KindFiles, HighView: ViewWin32Inside, LowView: ViewRawMFT,
		Hidden:  []Finding{{Kind: KindFiles, ID: `C:\GHOST.EXE`, Display: `C:\ghost.exe`}},
		Elapsed: 3 * time.Second,
	}
}

func TestDigestSealAndVerify(t *testing.T) {
	r := sampleReport()
	if err := r.VerifyDigest(); err == nil {
		t.Error("unsealed report verified")
	}
	r.Seal()
	if r.Digest == "" {
		t.Fatal("Seal left no digest")
	}
	if err := r.VerifyDigest(); err != nil {
		t.Errorf("sealed report fails verification: %v", err)
	}
}

// TestDigestExcludesElapsed: virtual scan time is timing, not content —
// a warm-cache rescan that found the same things must share the digest.
func TestDigestExcludesElapsed(t *testing.T) {
	a, b := sampleReport(), sampleReport()
	b.Elapsed = 17 * time.Minute
	a.Seal()
	b.Seal()
	if a.Digest != b.Digest {
		t.Error("digest depends on Elapsed")
	}
}

// TestDigestDetectsTamper: every content field must be covered.
func TestDigestDetectsTamper(t *testing.T) {
	tamper := map[string]func(*Report){
		"drop finding":     func(r *Report) { r.Hidden = nil },
		"rename finding":   func(r *Report) { r.Hidden[0].ID = `C:\INNOCENT.EXE` },
		"add phantom":      func(r *Report) { r.Phantom = append(r.Phantom, Finding{ID: "X"}) },
		"hide degradation": func(r *Report) { r.HighSkipped = 0 },
		"drop unit loss":   func(r *Report) { r.DegradedUnits = nil },
		"flip kind":        func(r *Report) { r.Kind = KindModules },
	}
	for name, mutate := range tamper {
		r := sampleReport()
		r.HighSkipped = 2
		r.DegradedUnits = []DegradedUnit{{Unit: "files/low", Fault: "torn"}}
		r.Seal()
		mutate(r)
		if err := r.VerifyDigest(); err == nil {
			t.Errorf("%s: tampered report still verifies", name)
		}
	}
}

// TestScanReportsAreSealed: every report the detector emits — clean,
// degraded stub, or demoted — carries a verifying digest.
func TestScanReportsAreSealed(t *testing.T) {
	m := mustMachine(t)
	d := NewDetector(m)
	d.Advanced = true
	reports, err := d.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if err := r.VerifyDigest(); err != nil {
			t.Errorf("scan report not sealed: %v", err)
		}
	}
	// Degraded stubs (deadline abandons every unit) are sealed too.
	d2 := NewDetector(m)
	d2.Contain = true
	d2.Deadline = time.Nanosecond
	reports, err = d2.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if !r.Degraded() {
			t.Fatalf("1ns deadline did not degrade %v", r.Kind)
		}
		if err := r.VerifyDigest(); err != nil {
			t.Errorf("degraded stub not sealed: %v", err)
		}
	}
}

func TestVerifyDigestErrorNamesReport(t *testing.T) {
	r := sampleReport()
	r.Seal()
	r.Hidden = nil
	err := r.VerifyDigest()
	if err == nil || !strings.Contains(err.Error(), "files") || !strings.Contains(err.Error(), "altered") {
		t.Errorf("tamper error uninformative: %v", err)
	}
}
