// Package core implements Strider GhostBuster itself: the high-level and
// low-level scanners for each resource type (files, Registry ASEP hooks,
// processes, loaded modules) and the cross-view diff engine that exposes
// hidden resources by comparing "the lie" (the view through the API
// chain the ghostware intercepts) with "the truth" (raw on-disk or
// in-kernel structures, or an outside-the-box clean scan).
package core

import (
	"fmt"
	"time"
)

// ResourceKind is the type of resource a scan covers.
type ResourceKind int

// The four resource kinds of the paper (§2, §3, §4).
const (
	KindFiles ResourceKind = iota + 1
	KindASEPHooks
	KindProcesses
	KindModules
	// KindDrivers extends the paper's four types with loaded-driver
	// diffing (see forensics.go).
	KindDrivers
	// KindBootChain extends the resource kinds with boot-sector regions:
	// the next-generation bootkit family hides under the NTFS boot
	// sector, below every file (see nextgen.go).
	KindBootChain
)

// String names the resource kind.
func (k ResourceKind) String() string {
	switch k {
	case KindFiles:
		return "files"
	case KindASEPHooks:
		return "ASEP hooks"
	case KindProcesses:
		return "processes"
	case KindModules:
		return "modules"
	case KindDrivers:
		return "drivers"
	case KindBootChain:
		return "boot chain"
	default:
		return "unknown"
	}
}

// View identifies the vantage point of a scan.
type View string

// The scan vantage points GhostBuster supports.
const (
	ViewWin32Inside  View = "inside-high/win32"   // through the full hook chain
	ViewNativeInside View = "inside-high/native"  // entering at ntdll
	ViewRawMFT       View = "inside-low/raw-mft"  // parse the device bytes
	ViewRawHive      View = "inside-low/raw-hive" // copy + parse hive files
	ViewKernelAPL    View = "inside-low/active-process-list"
	ViewKernelCID    View = "inside-low/cid-table" // advanced mode
	ViewKernelVAD    View = "inside-low/vad"
	ViewWinPE        View = "outside/winpe"      // clean CD boot
	ViewCrashDump    View = "outside/crash-dump" // blue-screen memory dump
	ViewVMHost       View = "outside/vm-host"    // powered-down virtual disk

	// Next-generation scan vantage points (see nextgen.go).
	ViewKernelCarve  View = "inside-low/pool-carve"    // pool-tag sweep of kernel memory
	ViewBootAPI      View = "inside-high/boot-read"    // sector 0 through the hooked read path
	ViewBootRaw      View = "inside-low/raw-boot"      // sector 0 straight off the device
	ViewRawRemovable View = "inside-low/raw-removable" // raw parse of the removable device
)

// Entry is one scanned resource instance.
type Entry struct {
	ID      string `json:"id"`      // canonical identity used for diffing
	Display string `json:"display"` // how reports print it
	Detail  string `json:"detail"`  // auxiliary information (size, pid, hook data)
}

// Snapshot is the result of one scan: a keyed set of entries. This is
// the serialization and interchange form; the detector hot path runs on
// ColumnarSnapshot and materializes this adapter at API boundaries.
type Snapshot struct {
	Kind    ResourceKind     `json:"kind"`
	View    View             `json:"view"`
	Taken   time.Duration    `json:"takenNs"` // virtual time when the scan completed
	Entries map[string]Entry `json:"entries"`
	Elapsed time.Duration    `json:"elapsedNs"` // virtual time the scan consumed
	// Skipped counts scan targets the pass could not read (e.g. pids
	// whose process exited mid-scan). A snapshot that skipped half its
	// targets must not be mistaken for a clean one.
	Skipped int `json:"skipped,omitempty"`
}

func newSnapshot(kind ResourceKind, view View) *Snapshot {
	return &Snapshot{Kind: kind, View: view, Entries: map[string]Entry{}}
}

func (s *Snapshot) add(e Entry) { s.Entries[e.ID] = e }

// grow preallocates the entry map for n expected entries. Called by
// scanners that know the result size up front, before the add loop, so
// the hot path avoids incremental map rehashing.
func (s *Snapshot) grow(n int) {
	if len(s.Entries) == 0 && n > 0 {
		s.Entries = make(map[string]Entry, n)
	}
}

// Len returns the entry count.
func (s *Snapshot) Len() int { return len(s.Entries) }

// Finding is one cross-view discrepancy.
type Finding struct {
	Kind    ResourceKind `json:"kind"`
	ID      string       `json:"id"`
	Display string       `json:"display"`
	Detail  string       `json:"detail,omitempty"`
	// Noise marks findings matched by a known-benign filter (outside-
	// the-box reboot churn); they remain in the report but are separated
	// the way the paper's "easily filtered out" false positives were.
	Noise  bool   `json:"noise,omitempty"`
	Reason string `json:"reason,omitempty"` // which filter matched, for Noise findings
}

// Report is the outcome of one cross-view diff.
type Report struct {
	Kind     ResourceKind `json:"kind"`
	HighView View         `json:"highView"`
	LowView  View         `json:"lowView"`
	// Hidden: present in the low-level/outside view but absent from the
	// high-level view — the ghostware's hidden resources.
	Hidden []Finding `json:"hidden"`
	// Noise: hidden-side findings attributed to benign churn by filters.
	Noise []Finding `json:"noise,omitempty"`
	// Phantom: present in the high view but absent from the low view.
	// Usually empty; a transient file deleted between the two scans (the
	// paper's race window), or active anti-scanner deception.
	Phantom []Finding `json:"phantom,omitempty"`
	// HighSkipped/LowSkipped propagate the snapshots' skipped-target
	// counts (see Snapshot.Skipped), so partial coverage is visible in
	// the report itself.
	HighSkipped int `json:"highSkipped,omitempty"`
	LowSkipped  int `json:"lowSkipped,omitempty"`
	// Elapsed is total virtual scan+diff time.
	Elapsed time.Duration `json:"elapsedNs"`
	// MassHiding is set when the hidden count is itself an anomaly (the
	// paper's §5 decoy-attack defence).
	MassHiding *MassHidingAnomaly `json:"massHiding,omitempty"`
	// DegradedUnits lists scan units of this resource pair that failed
	// or were abandoned (fault, deadline, mid-scan mutation) under
	// error containment. A report with degraded units carries whatever
	// findings the surviving views support; absence-of-findings claims
	// are not trustworthy for the degraded views.
	DegradedUnits []DegradedUnit `json:"degradedUnits,omitempty"`
	// Digest is the canonical-serialization digest sealing the report's
	// content (everything above except Elapsed; see ComputeDigest). A
	// report whose digest no longer verifies was altered after the scan
	// — the tamper-evidence the operator-facing tools check end-to-end.
	Digest string `json:"digest,omitempty"`
}

// DegradedUnit records one scan unit lost to a fault under containment.
type DegradedUnit struct {
	// Unit names the lost unit, e.g. "files/high", "ASEPs/low", or
	// "files/pair" when the whole comparison was abandoned.
	Unit string `json:"unit"`
	// Fault is the failure that degraded the unit.
	Fault string `json:"fault"`
	// Compared lists the views that still produced usable snapshots for
	// this resource, empty when the comparison was lost entirely.
	Compared []View `json:"compared,omitempty"`
}

// Infected reports whether any non-noise hidden resources were found.
func (r *Report) Infected() bool { return len(r.Hidden) > 0 }

// Degraded reports whether any of the pair's scan units was lost.
func (r *Report) Degraded() bool { return len(r.DegradedUnits) > 0 }

// MassHidingAnomaly flags an implausibly large hidden set: an attacker
// hiding thousands of innocent files to bury its own (paper §5). The
// infection signal survives even though per-file triage is impractical.
type MassHidingAnomaly struct {
	HiddenCount int `json:"hiddenCount"`
	Threshold   int `json:"threshold"`
}

func (a *MassHidingAnomaly) String() string {
	return fmt.Sprintf("ANOMALY: %d hidden entries (threshold %d) — mass-hiding attack suspected", a.HiddenCount, a.Threshold)
}

// Summary renders a one-line result for a report.
func (r *Report) Summary() string {
	verdict := "clean"
	if r.Infected() {
		verdict = fmt.Sprintf("INFECTED (%d hidden)", len(r.Hidden))
	}
	noise := ""
	if len(r.Noise) > 0 {
		noise = fmt.Sprintf(", %d known-benign", len(r.Noise))
	}
	if n := r.HighSkipped + r.LowSkipped; n > 0 {
		noise += fmt.Sprintf(", %d targets skipped", n)
	}
	return fmt.Sprintf("%-10s %s vs %s: %s%s", r.Kind, r.HighView, r.LowView, verdict, noise)
}
