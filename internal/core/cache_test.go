package core

import (
	"strings"
	"testing"

	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/hive"
	"ghostbuster/internal/ntfs"
)

func TestScanCacheFilesHitOnUnchangedDisk(t *testing.T) {
	m := mustMachine(t)
	c := NewScanCache(m)
	cold, err := c.ScanFilesLow()
	if err != nil {
		t.Fatal(err)
	}
	warm, err := c.ScanFilesLow()
	if err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", s)
	}
	if cold.Len() != warm.Len() {
		t.Fatalf("warm snapshot lost entries: %d vs %d", warm.Len(), cold.Len())
	}
	for id := range cold.Entries {
		if _, ok := warm.Entries[id]; !ok {
			t.Fatalf("warm snapshot missing %q", id)
		}
	}
	// A hit charges only the verify pass, far below the full MFT read.
	if warm.Elapsed*5 >= cold.Elapsed {
		t.Errorf("warm verify pass cost %v, cold parse %v — want ≥5× cheaper", warm.Elapsed, cold.Elapsed)
	}
	if warm.Elapsed <= 0 {
		t.Error("cache hit must still charge virtual time for the verify pass")
	}
}

func TestScanCacheVolumeMutationsInvalidate(t *testing.T) {
	m := mustMachine(t)
	c := NewScanCache(m)

	scan := func() *Snapshot {
		t.Helper()
		s, err := c.ScanFilesLow()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	scan()

	// Create.
	if err := m.DropFile(`C:\newdir\fresh.exe`, []byte("x")); err != nil {
		t.Fatal(err)
	}
	s := scan()
	if _, ok := s.Entries[fileID(`C:\newdir\fresh.exe`)]; !ok {
		t.Fatal("created file missing from post-mutation scan")
	}

	// Write (same paths, new data) must still invalidate.
	before := c.Stats()
	if err := m.DropFile(`C:\newdir\fresh.exe`, []byte("longer payload")); err != nil {
		t.Fatal(err)
	}
	scan()
	if s := c.Stats(); s.Misses != before.Misses+1 {
		t.Fatalf("rewrite did not invalidate: %+v -> %+v", before, s)
	}

	// ADS creation is a mutation too — the stream appears in the raw view.
	if err := m.Disk.CreateStream(`\newdir\fresh.exe`, "payload", []byte("ads")); err != nil {
		t.Fatal(err)
	}
	s = scan()
	if _, ok := s.Entries[fileID(`C:\newdir\fresh.exe:payload`)]; !ok {
		t.Fatal("ADS missing from post-mutation scan")
	}

	// Remove.
	if err := m.RemoveFile(`C:\newdir\fresh.exe`); err != nil {
		t.Fatal(err)
	}
	s = scan()
	if _, ok := s.Entries[fileID(`C:\newdir\fresh.exe`)]; ok {
		t.Fatal("removed file still served from cache")
	}
}

// TestScanCacheDirectDeviceWriteInvalidates covers the ghostware path
// that bypasses every Volume mutator: patching raw device bytes. Wiping
// a file's MFT record (anti-forensics) must show up on the very next
// low-level scan.
func TestScanCacheDirectDeviceWriteInvalidates(t *testing.T) {
	m := mustMachine(t)
	if err := m.DropFile(`C:\victim.dat`, []byte("v")); err != nil {
		t.Fatal(err)
	}
	c := NewScanCache(m)
	s, err := c.ScanFilesLow()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Entries[fileID(`C:\victim.dat`)]; !ok {
		t.Fatal("victim not visible before the wipe")
	}
	info, err := m.Disk.Stat(`\victim.dat`)
	if err != nil {
		t.Fatal(err)
	}
	off := int(m.Disk.Geometry().MFTStart)*ntfs.ClusterSize + int(info.Record)*ntfs.RecordSize
	if err := m.WriteDeviceBytes(off, make([]byte, ntfs.RecordSize)); err != nil {
		t.Fatal(err)
	}
	s, err = c.ScanFilesLow()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Entries[fileID(`C:\victim.dat`)]; ok {
		t.Fatal("stale cache still lists the wiped record")
	}
	if st := c.Stats(); st.Misses != 2 {
		t.Fatalf("direct device write did not invalidate: %+v", st)
	}
}

func TestScanCacheHiveCommitInvalidates(t *testing.T) {
	m := mustMachine(t)
	c := NewScanCache(m)
	s1, err := c.ScanASEPLow()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ScanASEPLow(); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
	if err := m.Reg.SetString(`HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\Run`,
		"Ghost", `C:\ghost.exe`); err != nil {
		t.Fatal(err)
	}
	s2, err := c.ScanASEPLow()
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 2 {
		t.Fatalf("hive commit did not invalidate: %+v", st)
	}
	if s2.Len() != s1.Len()+1 {
		t.Fatalf("new ASEP hook missing: %d -> %d entries", s1.Len(), s2.Len())
	}
	found := false
	for id := range s2.Entries {
		if strings.HasSuffix(id, "-> GHOST") {
			found = true
		}
	}
	if !found {
		t.Fatal("post-commit scan does not list the new Run hook")
	}
}

func TestScanCacheMountChangeInvalidates(t *testing.T) {
	m := mustMachine(t)
	c := NewScanCache(m)
	if _, err := c.ScanASEPLow(); err != nil {
		t.Fatal(err)
	}
	// Swapping a hive in or out must invalidate even though no mounted
	// hive committed anything.
	m.Reg.Mount(`HKU\S-1-5-21`, hive.New("ntuser-extra"))
	if _, err := c.ScanASEPLow(); err != nil {
		t.Fatal(err)
	}
	m.Reg.Unmount(`HKU\S-1-5-21`)
	if _, err := c.ScanASEPLow(); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 3 || st.Hits != 0 {
		t.Fatalf("mount-table changes did not invalidate: %+v", st)
	}
}

// TestHiddenResourcesAfterCachedSweepDetected is the headline regression
// for the incremental layer: a host sweeps clean and warm, THEN gets
// infected; the next sweep must detect everything the ghostware hides —
// no stale snapshot may mask it.
func TestHiddenResourcesAfterCachedSweepDetected(t *testing.T) {
	m := mustMachine(t)
	d := NewCachedDetector(m)
	d.Advanced = true

	for i := 0; i < 2; i++ { // cold sweep, then warm (cached) sweep
		reports, err := d.ScanAll()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range reports {
			if r.Infected() {
				t.Fatalf("sweep %d: clean machine reported infected: %s", i, r.Summary())
			}
		}
	}
	if st := d.Cache.Stats(); st.Hits == 0 {
		t.Fatal("second sweep never hit the cache")
	}

	hd := ghostware.NewHackerDefender()
	if err := hd.Install(m); err != nil {
		t.Fatal(err)
	}

	files, err := d.ScanFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(files.Hidden) != len(hd.HiddenFiles()) {
		t.Fatalf("post-infection hidden files = %d, want %d: %+v",
			len(files.Hidden), len(hd.HiddenFiles()), files.Hidden)
	}
	aseps, err := d.ScanASEPs()
	if err != nil {
		t.Fatal(err)
	}
	if len(aseps.Hidden) != len(hd.HiddenASEPs()) {
		t.Fatalf("post-infection hidden ASEPs = %d, want %d: %+v",
			len(aseps.Hidden), len(hd.HiddenASEPs()), aseps.Hidden)
	}
}

// TestCachedDetectorMatchesUncached: with and without the cache, over a
// mutating machine, every sweep's findings must be identical.
func TestCachedDetectorMatchesUncached(t *testing.T) {
	m := mustMachine(t)
	cached := NewCachedDetector(m)
	plain := NewDetector(m)

	step := func(label string) {
		t.Helper()
		a, err := cached.ScanFiles()
		if err != nil {
			t.Fatal(err)
		}
		b, err := plain.ScanFiles()
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Hidden) != len(b.Hidden) || len(a.Phantom) != len(b.Phantom) {
			t.Fatalf("%s: cached {hidden %d phantom %d} vs plain {hidden %d phantom %d}",
				label, len(a.Hidden), len(a.Phantom), len(b.Hidden), len(b.Phantom))
		}
	}
	step("clean")
	if err := ghostware.NewVanquish().Install(m); err != nil {
		t.Fatal(err)
	}
	step("infected")
	step("infected-warm")
}
