package core

import (
	"fmt"

	"ghostbuster/internal/machine"
	"ghostbuster/internal/ntfs"
	"ghostbuster/internal/vtime"
	"ghostbuster/internal/winapi"
)

// This file holds the detection surfaces beyond the paper's four
// resource types: loaded-driver diffing and deleted-file forensics.

// ScanDriversHigh lists loaded drivers through the (hookable) API chain.
func ScanDriversHigh(m *machine.Machine, call *winapi.Call) (*Snapshot, error) {
	c, err := scanDriversHighC(m, call, NewInternTable())
	if err != nil {
		return nil, err
	}
	return c.Snapshot(), nil
}

func scanDriversHighC(m *machine.Machine, call *winapi.Call, t *InternTable) (*ColumnarSnapshot, error) {
	sw := vtime.NewStopwatch(m.Clock)
	drvs, err := m.API.EnumDriversWin32(call)
	if err != nil {
		return nil, fmt.Errorf("core: high-level driver scan: %w", err)
	}
	// The "base 0x<hex>" detail matches the former fmt.Sprintf("base %#x")
	// rendering byte-for-byte.
	bld := NewColumnarBuilder(t, KindDrivers, ViewWin32Inside, len(drvs))
	var idBuf, detBuf []byte
	for _, d := range drvs {
		var sym Sym
		sym, idBuf = internFileID(t, idBuf, d.Path)
		detBuf = appendBaseDetail(detBuf, d.Base)
		bld.AddRow(sym, d.Path, t.InternStrBytes(detBuf))
	}
	snap := bld.Build()
	m.Clock.ChargeOps(int64(len(drvs)), costPerModule)
	snap.Taken = m.Clock.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

// ScanDriversLow walks the kernel's loaded-module list directly.
func ScanDriversLow(m *machine.Machine) (*Snapshot, error) {
	c, err := scanDriversLowC(m, NewInternTable())
	if err != nil {
		return nil, err
	}
	return c.Snapshot(), nil
}

func scanDriversLowC(m *machine.Machine, t *InternTable) (*ColumnarSnapshot, error) {
	sw := vtime.NewStopwatch(m.Clock)
	drvs, err := m.Kern.Drivers()
	if err != nil {
		return nil, fmt.Errorf("core: low-level driver scan: %w", err)
	}
	bld := NewColumnarBuilder(t, KindDrivers, ViewKernelAPL, len(drvs))
	var idBuf, detBuf []byte
	for _, d := range drvs {
		var sym Sym
		sym, idBuf = internFileID(t, idBuf, d.Path)
		detBuf = appendBaseDetail(detBuf, d.Base)
		bld.AddRow(sym, d.Path, t.InternStrBytes(detBuf))
	}
	snap := bld.Build()
	m.Clock.ChargeOps(int64(len(drvs)), costPerModule)
	snap.Taken = m.Clock.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

// ScanDrivers diffs the driver views, exposing rootkits that filter the
// driver-enumeration API (a natural next step for Hacker Defender-style
// rootkits once AskStrider made the visible driver a liability, §4).
func (d *Detector) ScanDrivers() (*Report, error) {
	call, err := d.call()
	if err != nil {
		return nil, err
	}
	t := d.table()
	high, err := scanDriversHighC(d.M, call, t)
	if err != nil {
		return nil, err
	}
	low, err := scanDriversLowC(d.M, t)
	if err != nil {
		return nil, err
	}
	return sealedDiffColumnar(high, low, d.Opts)
}

// DeletedFile is one stale MFT record recovered forensically.
type DeletedFile struct {
	Name   string
	Record uint32
	Size   uint64
}

// ScanDeletedFiles lists files whose MFT records were freed but not yet
// reused — the residue left when ghostware deletes itself (or when an
// operator removes it). The paper's removal story ends with file
// deletion; this extension proves post-hoc what was removed.
func ScanDeletedFiles(m *machine.Machine) ([]DeletedFile, error) {
	var entries []ntfs.DeletedEntry
	err := m.Disk.WithDevice(func(dev []byte) error {
		var err error
		entries, err = ntfs.ScanDeleted(dev)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("core: deleted-file scan: %w", err)
	}
	out := make([]DeletedFile, 0, len(entries))
	for _, e := range entries {
		out = append(out, DeletedFile{Name: e.Name, Record: e.Record, Size: e.Size})
	}
	m.Clock.ChargeOps(int64(len(entries)), costPerRepFileLow)
	return out, nil
}
