package core

import (
	"fmt"

	"ghostbuster/internal/machine"
	"ghostbuster/internal/ntfs"
	"ghostbuster/internal/vtime"
	"ghostbuster/internal/winapi"
)

// This file holds the detection surfaces beyond the paper's four
// resource types: loaded-driver diffing and deleted-file forensics.

// ScanDriversHigh lists loaded drivers through the (hookable) API chain.
func ScanDriversHigh(m *machine.Machine, call *winapi.Call) (*Snapshot, error) {
	sw := vtime.NewStopwatch(m.Clock)
	snap := newSnapshot(KindDrivers, ViewWin32Inside)
	drvs, err := m.API.EnumDriversWin32(call)
	if err != nil {
		return nil, fmt.Errorf("core: high-level driver scan: %w", err)
	}
	for _, d := range drvs {
		snap.add(Entry{ID: fileID(d.Path), Display: d.Path, Detail: fmt.Sprintf("base %#x", d.Base)})
	}
	m.Clock.ChargeOps(int64(len(drvs)), costPerModule)
	snap.Taken = m.Clock.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

// ScanDriversLow walks the kernel's loaded-module list directly.
func ScanDriversLow(m *machine.Machine) (*Snapshot, error) {
	sw := vtime.NewStopwatch(m.Clock)
	snap := newSnapshot(KindDrivers, ViewKernelAPL)
	drvs, err := m.Kern.Drivers()
	if err != nil {
		return nil, fmt.Errorf("core: low-level driver scan: %w", err)
	}
	for _, d := range drvs {
		snap.add(Entry{ID: fileID(d.Path), Display: d.Path, Detail: fmt.Sprintf("base %#x", d.Base)})
	}
	m.Clock.ChargeOps(int64(len(drvs)), costPerModule)
	snap.Taken = m.Clock.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

// ScanDrivers diffs the driver views, exposing rootkits that filter the
// driver-enumeration API (a natural next step for Hacker Defender-style
// rootkits once AskStrider made the visible driver a liability, §4).
func (d *Detector) ScanDrivers() (*Report, error) {
	call, err := d.call()
	if err != nil {
		return nil, err
	}
	high, err := ScanDriversHigh(d.M, call)
	if err != nil {
		return nil, err
	}
	low, err := ScanDriversLow(d.M)
	if err != nil {
		return nil, err
	}
	return SealedDiff(high, low, d.Opts)
}

// DeletedFile is one stale MFT record recovered forensically.
type DeletedFile struct {
	Name   string
	Record uint32
	Size   uint64
}

// ScanDeletedFiles lists files whose MFT records were freed but not yet
// reused — the residue left when ghostware deletes itself (or when an
// operator removes it). The paper's removal story ends with file
// deletion; this extension proves post-hoc what was removed.
func ScanDeletedFiles(m *machine.Machine) ([]DeletedFile, error) {
	var entries []ntfs.DeletedEntry
	err := m.Disk.WithDevice(func(dev []byte) error {
		var err error
		entries, err = ntfs.ScanDeleted(dev)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("core: deleted-file scan: %w", err)
	}
	out := make([]DeletedFile, 0, len(entries))
	for _, e := range entries {
		out = append(out, DeletedFile{Name: e.Name, Record: e.Record, Size: e.Size})
	}
	m.Clock.ChargeOps(int64(len(entries)), costPerRepFileLow)
	return out, nil
}
