package core

import (
	"strings"
	"testing"
	"testing/quick"

	"ghostbuster/internal/kernel"
	"ghostbuster/internal/kmem"
	"ghostbuster/internal/machine"
	"ghostbuster/internal/winapi"
)

func smallProfile() machine.Profile {
	p := machine.DefaultProfile()
	p.DiskUsedGB = 1
	p.Churn = nil
	return p
}

func mustMachine(t *testing.T) *machine.Machine {
	t.Helper()
	m, err := machine.New(smallProfile())
	if err != nil {
		t.Fatalf("machine.New: %v", err)
	}
	return m
}

func TestCleanMachineAllScansClean(t *testing.T) {
	m := mustMachine(t)
	d := NewDetector(m)
	d.Advanced = true
	reports, err := d.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("reports = %d", len(reports))
	}
	for _, r := range reports {
		if r.Infected() {
			t.Errorf("clean machine: %s reports hidden: %+v", r.Kind, r.Hidden)
		}
		if len(r.Phantom) != 0 {
			t.Errorf("clean machine: %s reports phantom: %+v", r.Kind, r.Phantom)
		}
		if r.MassHiding != nil {
			t.Errorf("clean machine: %s mass-hiding anomaly", r.Kind)
		}
	}
}

func TestHiddenFileDetected(t *testing.T) {
	m := mustMachine(t)
	if err := m.DropFile(`C:\WINDOWS\system32\msvsres.dll`, []byte("MZ evil")); err != nil {
		t.Fatal(err)
	}
	// Hide it the Urbin way: IAT-level enumeration filter.
	m.API.Install(winapi.NewFileHideHook("urbin", winapi.LevelIAT, "IAT", nil,
		func(call *winapi.Call, e winapi.DirEntry) bool {
			return strings.EqualFold(e.Name, "msvsres.dll")
		}))
	r, err := NewDetector(m).ScanFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) != 1 {
		t.Fatalf("hidden = %+v", r.Hidden)
	}
	if !strings.Contains(r.Hidden[0].ID, "MSVSRES.DLL") {
		t.Errorf("finding = %+v", r.Hidden[0])
	}
	if !r.Infected() {
		t.Error("report should flag infection")
	}
}

func TestUnhiddenDroppedFileIsNotAFinding(t *testing.T) {
	m := mustMachine(t)
	if err := m.DropFile(`C:\stuff\benign.txt`, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	r, err := NewDetector(m).ScanFiles()
	if err != nil {
		t.Fatal(err)
	}
	if r.Infected() {
		t.Errorf("visible file flagged: %+v", r.Hidden)
	}
}

func TestWin32RestrictedNamesDetectedWithoutAnyHook(t *testing.T) {
	// Paper §2: files whose names break Win32 rules are hidden with no
	// interception at all. The cross-view diff still finds them.
	m := mustMachine(t)
	for _, p := range []string{`C:\data\evil.`, `C:\data\NUL.dat`, `C:\data\trail `} {
		if err := m.DropFile(p, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewDetector(m).ScanFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) != 3 {
		t.Errorf("hidden = %+v", r.Hidden)
	}
}

func TestHiddenASEPHookDetected(t *testing.T) {
	m := mustMachine(t)
	run := `HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\Run`
	if err := m.Reg.SetString(run, "hxdef", `C:\hxdef\hxdef100.exe`); err != nil {
		t.Fatal(err)
	}
	m.API.Install(winapi.NewRegHideHook("hxdef", winapi.LevelNtdll, "inline", nil, nil,
		func(call *winapi.Call, keyPath, name string) bool { return strings.EqualFold(name, "hxdef") }))
	r, err := NewDetector(m).ScanASEPs()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) != 1 || !strings.Contains(r.Hidden[0].ID, "HXDEF") {
		t.Fatalf("hidden hooks = %+v", r.Hidden)
	}
}

func TestNULEmbeddedRegistryNameDetected(t *testing.T) {
	// Paper §3: values created with the Native API carrying embedded
	// NULs are invisible to Win32 RegEdit but present in the raw hive.
	m := mustMachine(t)
	run := `HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\Run`
	if err := m.Reg.SetString(run, "stealth\x00svc", `C:\mal\mal.exe`); err != nil {
		t.Fatal(err)
	}
	r, err := NewDetector(m).ScanASEPs()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) != 1 {
		t.Fatalf("hidden hooks = %+v", r.Hidden)
	}
	if !strings.Contains(r.Hidden[0].Display, `\0`) {
		t.Errorf("display should escape the NUL: %q", r.Hidden[0].Display)
	}
}

func TestHiddenProcessDetectedViaAPLAndCID(t *testing.T) {
	m := mustMachine(t)
	if _, err := m.StartProcess("berbew.exe", `C:\WINDOWS\berbew.exe`); err != nil {
		t.Fatal(err)
	}
	m.API.Install(winapi.NewProcHideHook("berbew", winapi.LevelNtdll, "jmp detour", nil,
		func(call *winapi.Call, p winapi.ProcEntry) bool { return strings.EqualFold(p.Name, "berbew.exe") }))
	d := NewDetector(m)
	r, err := d.ScanProcesses()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) != 1 || !strings.Contains(r.Hidden[0].ID, "BERBEW.EXE") {
		t.Fatalf("normal-mode hidden = %+v", r.Hidden)
	}
	d.Advanced = true
	r, err = d.ScanProcesses()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) != 1 {
		t.Fatalf("advanced-mode hidden = %+v", r.Hidden)
	}
}

func TestDKOMHiddenProcessNeedsAdvancedMode(t *testing.T) {
	m := mustMachine(t)
	pid, err := m.StartProcess("fuhidden.exe", `C:\fu\fuhidden.exe`)
	if err != nil {
		t.Fatal(err)
	}
	eproc, err := m.Kern.EprocessByPid(pid)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.Mem.ListRemove(eproc + kernel.EprocActiveLinks); err != nil {
		t.Fatal(err)
	}
	d := NewDetector(m)
	r, err := d.ScanProcesses()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) != 0 {
		t.Errorf("normal mode should MISS DKOM (APL is not the truth): %+v", r.Hidden)
	}
	d.Advanced = true
	r, err = d.ScanProcesses()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) != 1 || !strings.Contains(r.Hidden[0].ID, "FUHIDDEN.EXE") {
		t.Fatalf("advanced mode hidden = %+v", r.Hidden)
	}
}

func TestHiddenModuleDetected(t *testing.T) {
	m := mustMachine(t)
	// Vanquish injects into many processes and blanks the PEB name.
	procs, err := m.Kern.Processes()
	if err != nil {
		t.Fatal(err)
	}
	injected := 0
	for _, p := range procs {
		if p.Pid == kernel.SystemPid {
			continue
		}
		if _, err := m.Kern.LoadModule(p.Pid, `C:\WINDOWS\vanquish.dll`); err != nil {
			t.Fatal(err)
		}
		entry, err := m.Kern.FindModuleEntry(p.Pid, "vanquish.dll")
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Kern.BlankModuleName(entry); err != nil {
			t.Fatal(err)
		}
		injected++
	}
	r, err := NewDetector(m).ScanModules()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) != injected {
		t.Fatalf("hidden modules = %d, want %d (one per injected process)", len(r.Hidden), injected)
	}
	for _, f := range r.Hidden {
		if !strings.Contains(f.ID, "VANQUISH.DLL") {
			t.Errorf("finding = %+v", f)
		}
	}
}

func TestModulesOfDKOMHiddenProcessAreScanned(t *testing.T) {
	m := mustMachine(t)
	pid, err := m.StartProcess("ghost.exe", `C:\g\ghost.exe`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Kern.LoadModule(pid, `C:\g\payload.dll`); err != nil {
		t.Fatal(err)
	}
	entry, err := m.Kern.FindModuleEntry(pid, "payload.dll")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.BlankModuleName(entry); err != nil {
		t.Fatal(err)
	}
	eproc, err := m.Kern.EprocessByPid(pid)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.Mem.ListRemove(eproc + kernel.EprocActiveLinks); err != nil {
		t.Fatal(err)
	}
	r, err := NewDetector(m).ScanModules()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range r.Hidden {
		if strings.Contains(f.ID, "PAYLOAD.DLL") {
			found = true
		}
	}
	if !found {
		t.Errorf("module of DKOM-hidden process missed: %+v", r.Hidden)
	}
}

func TestCrashDumpScanMatchesLive(t *testing.T) {
	m := mustMachine(t)
	if _, err := m.StartProcess("x.exe", `C:\x.exe`); err != nil {
		t.Fatal(err)
	}
	live, err := ScanProcsLow(m, false)
	if err != nil {
		t.Fatal(err)
	}
	img := kmemImage(m)
	dumped, err := ScanProcsFromDump(img, m.Kern.Layout(), false)
	if err != nil {
		t.Fatal(err)
	}
	if live.Len() != dumped.Len() {
		t.Errorf("live %d vs dump %d", live.Len(), dumped.Len())
	}
	for id := range live.Entries {
		if _, ok := dumped.Entries[id]; !ok {
			t.Errorf("dump missing %s", id)
		}
	}
}

func TestMassHidingAnomaly(t *testing.T) {
	m := mustMachine(t)
	// Decoy attack (§5): hide very many innocent files.
	for i := 0; i < 120; i++ {
		if err := m.DropFile(innocentPath(i), []byte("data")); err != nil {
			t.Fatal(err)
		}
	}
	m.API.Install(winapi.NewFileHideHook("decoy", winapi.LevelFilter, "filter driver", nil,
		func(call *winapi.Call, e winapi.DirEntry) bool {
			return strings.HasPrefix(strings.ToUpper(e.Path), `C:\DOCS\`)
		}))
	r, err := NewDetector(m).ScanFiles()
	if err != nil {
		t.Fatal(err)
	}
	if r.MassHiding == nil {
		t.Fatalf("expected mass-hiding anomaly with %d hidden", len(r.Hidden))
	}
	if r.MassHiding.HiddenCount < 120 {
		t.Errorf("anomaly count = %d", r.MassHiding.HiddenCount)
	}
}

func innocentPath(i int) string {
	return `C:\docs\file` + strings.Repeat("0", 3-len(itoa(i))) + itoa(i) + `.txt`
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestNoiseFiltersSeparateChurn(t *testing.T) {
	f := Finding{Kind: KindFiles, ID: `C:\WINDOWS\PREFETCH\FOO.PF`}
	reason, ok := matchNoise(StandardNoiseFilters(), f)
	if !ok || reason != "OS prefetch" {
		t.Errorf("prefetch filter: %q %v", reason, ok)
	}
	f = Finding{Kind: KindFiles, ID: `C:\HXDEF\HXDEF100.EXE`}
	if _, ok := matchNoise(StandardNoiseFilters(), f); ok {
		t.Error("malware path must not match noise filters")
	}
	// Filters are kind-scoped: a registry hook under a prefetch-like
	// name is not file churn.
	f = Finding{Kind: KindASEPHooks, ID: `C:\WINDOWS\PREFETCH\FOO.PF`}
	if _, ok := matchNoise(StandardNoiseFilters(), f); ok {
		t.Error("noise filters must be kind-scoped")
	}
}

func TestDiffRejectsKindMismatch(t *testing.T) {
	a := newSnapshot(KindFiles, ViewWin32Inside)
	b := newSnapshot(KindProcesses, ViewKernelAPL)
	if _, err := Diff(a, b, DiffOptions{}); err == nil {
		t.Error("kind mismatch should error")
	}
}

func TestPhantomDirection(t *testing.T) {
	high := newSnapshot(KindFiles, ViewWin32Inside)
	low := newSnapshot(KindFiles, ViewRawMFT)
	high.add(Entry{ID: "ONLY-HIGH", Display: "only-high"})
	low.add(Entry{ID: "ONLY-LOW", Display: "only-low"})
	high.add(Entry{ID: "BOTH"})
	low.add(Entry{ID: "BOTH"})
	r, err := Diff(high, low, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) != 1 || r.Hidden[0].ID != "ONLY-LOW" {
		t.Errorf("hidden = %+v", r.Hidden)
	}
	if len(r.Phantom) != 1 || r.Phantom[0].ID != "ONLY-HIGH" {
		t.Errorf("phantom = %+v", r.Phantom)
	}
}

func TestScanElapsedIsPositiveAndScalesWithDisk(t *testing.T) {
	m := mustMachine(t)
	high, err := ScanFilesHigh(m, m.SystemCall())
	if err != nil {
		t.Fatal(err)
	}
	if high.Elapsed <= 0 {
		t.Error("high scan consumed no virtual time")
	}
	big := smallProfile()
	big.DiskUsedGB = 8
	big.Name = "bigger"
	m2, err := machine.New(big)
	if err != nil {
		t.Fatal(err)
	}
	// Populate extra files so the bigger disk has more records.
	for i := 0; i < 400; i++ {
		if err := m2.DropFile(`C:\bulk\f`+itoa(i)+`.bin`, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	high2, err := ScanFilesHigh(m2, m2.SystemCall())
	if err != nil {
		t.Fatal(err)
	}
	if high2.Elapsed <= high.Elapsed {
		t.Errorf("scan time should grow with file count: %v vs %v", high2.Elapsed, high.Elapsed)
	}
}

// kmemImage snapshots the machine's kernel memory for dump-based tests.
func kmemImage(m *machine.Machine) *kmem.ImageReader {
	return kmem.NewImageReader(m.Kern.Mem.Snapshot())
}

// TestDeterminism: two identically built and infected machines produce
// byte-identical reports — the property every virtual-time experiment
// depends on.
func TestDeterminism(t *testing.T) {
	runOnce := func() []*Report {
		m := mustMachine(t)
		if err := m.DropFile(`C:\WINDOWS\system32\msvsres.dll`, []byte("MZ")); err != nil {
			t.Fatal(err)
		}
		m.API.Install(winapi.NewFileHideHook("x", winapi.LevelIAT, "t", nil,
			func(call *winapi.Call, e winapi.DirEntry) bool {
				return strings.EqualFold(e.Name, "msvsres.dll")
			}))
		d := NewDetector(m)
		d.Advanced = true
		reports, err := d.ScanAll()
		if err != nil {
			t.Fatal(err)
		}
		return reports
	}
	a := runOnce()
	b := runOnce()
	for i := range a {
		if a[i].Summary() != b[i].Summary() || a[i].Elapsed != b[i].Elapsed {
			t.Errorf("report %d differs: %q/%v vs %q/%v", i, a[i].Summary(), a[i].Elapsed, b[i].Summary(), b[i].Elapsed)
		}
		if len(a[i].Hidden) != len(b[i].Hidden) {
			t.Errorf("report %d hidden count differs", i)
		}
		for j := range a[i].Hidden {
			if a[i].Hidden[j].ID != b[i].Hidden[j].ID {
				t.Errorf("report %d finding %d differs", i, j)
			}
		}
	}
}

// TestQuickDiffPartitions: for arbitrary high/low ID sets, Diff must
// partition exactly: hidden+noise = low\high, phantom = high\low, and
// nothing in the intersection is reported.
func TestQuickDiffPartitions(t *testing.T) {
	f := func(highIDs, lowIDs []uint8) bool {
		high := newSnapshot(KindFiles, ViewWin32Inside)
		low := newSnapshot(KindFiles, ViewRawMFT)
		hs := map[string]bool{}
		for _, x := range highIDs {
			id := "E" + itoa(int(x)%40)
			hs[id] = true
			high.add(Entry{ID: id, Display: id})
		}
		ls := map[string]bool{}
		for _, x := range lowIDs {
			id := "E" + itoa(int(x)%40)
			ls[id] = true
			low.add(Entry{ID: id, Display: id})
		}
		r, err := Diff(high, low, DiffOptions{MassHidingThreshold: -1})
		if err != nil {
			return false
		}
		wantHidden := 0
		for id := range ls {
			if !hs[id] {
				wantHidden++
			}
		}
		wantPhantom := 0
		for id := range hs {
			if !ls[id] {
				wantPhantom++
			}
		}
		if len(r.Hidden)+len(r.Noise) != wantHidden || len(r.Phantom) != wantPhantom {
			return false
		}
		for _, fd := range r.Hidden {
			if hs[fd.ID] || !ls[fd.ID] {
				return false
			}
		}
		for _, fd := range r.Phantom {
			if ls[fd.ID] || !hs[fd.ID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
