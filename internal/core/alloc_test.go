package core

import (
	"strings"
	"testing"
)

// The hot-path helpers were rewritten to stop paying fmt.Sprintf /
// unconditional strings.ToUpper per entry; these assertions pin the
// allocation behavior so a regression shows up as a test failure, not
// just a slower benchmark.

func TestFileIDAllocs(t *testing.T) {
	canonical := `C:\WINDOWS\SYSTEM32\NTOSKRNL.EXE`
	if got := testing.AllocsPerRun(100, func() {
		if fileID(canonical) != canonical {
			t.Fatal("canonical path must round-trip")
		}
	}); got != 0 {
		t.Errorf("fileID(canonical) allocs = %v, want 0", got)
	}
	lower := `C:\windows\system32\drivers\etc\hosts`
	want := strings.ToUpper(lower)
	if got := testing.AllocsPerRun(100, func() {
		if fileID(lower) != want {
			t.Fatal("upcase mismatch")
		}
	}); got > 2 {
		t.Errorf("fileID(lowercase) allocs = %v, want <= 2", got)
	}
}

func TestProcIDAllocs(t *testing.T) {
	if procID(4321, "lsass.exe") != "PID 4321: LSASS.EXE" {
		t.Fatalf("procID = %q", procID(4321, "lsass.exe"))
	}
	if got := testing.AllocsPerRun(100, func() {
		_ = procID(4321, "lsass.exe")
	}); got > 2 {
		t.Errorf("procID allocs = %v, want <= 2 (scratch buffer + string)", got)
	}
	if got := testing.AllocsPerRun(100, func() {
		_ = modID(4321, `C:\WINDOWS\system32\ntdll.dll`)
	}); got > 2 {
		t.Errorf("modID allocs = %v, want <= 2", got)
	}
}

// TestDiffInnerLoopAllocs bounds the diff of two identical snapshots —
// the every-sweep clean case. The loop itself must not allocate; the
// budget covers only the Report and its bookkeeping.
func TestDiffInnerLoopAllocs(t *testing.T) {
	snap := newSnapshot(KindFiles, ViewWin32Inside)
	snap.grow(512)
	for i := 0; i < 512; i++ {
		path := `C:\FILES\FILE` + string(rune('A'+i%26)) + `.DAT`
		snap.add(Entry{ID: fileID(path), Display: path, Detail: "1 bytes"})
	}
	if got := testing.AllocsPerRun(100, func() {
		r, err := Diff(snap, snap, DiffOptions{})
		if err != nil || r.Infected() {
			t.Fatal("diff of identical snapshots must be clean")
		}
	}); got > 3 {
		t.Errorf("clean diff allocs = %v, want <= 3", got)
	}
}

// TestScanOrderAllocs pins that drawing a randomized execution order is
// allocation-free when the permutation lives in the detector's
// fixed-size stack array.
func TestScanOrderAllocs(t *testing.T) {
	if got := testing.AllocsPerRun(100, func() {
		var perm [maxScanUnits]int
		scanOrder(perm[:], 12345)
	}); got != 0 {
		t.Errorf("scanOrder allocs = %v, want 0", got)
	}
}

// TestOrderedWarmSweepAllocs is the benchgate guard for randomized
// ordering: on the warm cached diff path, a nonzero OrderSeed must add
// only a constant number of allocations per sweep — nothing per entry.
// The machine carries thousands of files, so a per-entry regression
// would blow the slack by orders of magnitude.
func TestOrderedWarmSweepAllocs(t *testing.T) {
	measure := func(seed int64) float64 {
		m := mustMachine(t)
		d := NewCachedDetector(m)
		d.Advanced = true
		d.Units = UnitCrossMem | UnitBootChain | UnitRemovable
		d.OrderSeed = seed
		if _, err := d.ScanAll(); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(10, func() {
			if _, err := d.ScanAll(); err != nil {
				t.Fatal(err)
			}
		})
	}
	fixed := measure(0)
	ordered := measure(12345)
	// A per-entry regression would add thousands of allocations (one per
	// snapshot entry); the slack only absorbs scheduler/GC jitter, which
	// the race detector amplifies.
	slack := fixed/20 + 32
	if ordered > fixed+slack {
		t.Errorf("warm ordered sweep allocs = %v, fixed order = %v (slack %v); randomized ordering must not add per-entry allocations", ordered, fixed, slack)
	}
}
