package core

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"ghostbuster/internal/kernel"
	"ghostbuster/internal/kmem"
	"ghostbuster/internal/machine"
	"ghostbuster/internal/ntfs"
	"ghostbuster/internal/vtime"
	"ghostbuster/internal/winapi"
)

// This file holds the next-generation scan units: detections for
// ghostware families that evade the paper's four cross-view pairs.
//
//   - kmem-carve: a pool-tag sweep of kernel memory diffed against the
//     CID table walk. A memory-only ghost unlinks itself from every
//     kernel list and keeps zero file/Registry footprint; its EPROCESS
//     allocation still carries the 'Proc' pool tag.
//   - boot-chain: the boot sector read through the (hookable) API
//     diffed region-by-region against the raw device bytes. A bootkit
//     lives in the sector's bootstrap-code slack and sanitizes inside
//     reads.
//   - removable: the paper's file pair replayed over the hot-pluggable
//     E: volume, whose own truth source (the raw stick image) comes and
//     goes with the hardware.

// UnitSet selects which next-generation scan units a sweep runs, beyond
// the always-on paper eight.
type UnitSet uint32

// The next-generation scan units.
const (
	UnitCrossMem UnitSet = 1 << iota
	UnitBootChain
	UnitRemovable
)

// Has reports whether u is enabled in s.
func (s UnitSet) Has(u UnitSet) bool { return s&u != 0 }

// Cost constants for the next-generation units: the pool carve is a
// sequential memory sweep (cheap per page), the boot reads are two
// single-sector accesses.
const (
	costPerCarvePage = 20 * time.Microsecond
	carvePageSize    = 4096
)

// --- kmem-carve pair -----------------------------------------------------------

// scanCrossMemHighC is the "lie" side of the memory pair: the CID table
// walk, i.e. what the kernel's own bookkeeping admits to. A memory-only
// ghost has scrubbed itself from here.
func scanCrossMemHighC(m *machine.Machine, clk *vtime.Clock, t *InternTable) (*ColumnarSnapshot, error) {
	sw := vtime.NewStopwatch(clk)
	procs, err := kernel.WalkCidProcesses(m.Kern.ScanMem(), m.Kern.Layout())
	if err != nil {
		return nil, fmt.Errorf("core: kmem-carve high scan: %w", err)
	}
	snap := buildProcSnapshot(t, ViewKernelCID, procs)
	clk.ChargeOps(int64(len(procs)), costPerProcess)
	snap.Taken = clk.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

// scanCrossMemLowC is the truth side: carve kernel memory for tagged
// EPROCESS allocations, trusting no list.
func scanCrossMemLowC(m *machine.Machine, clk *vtime.Clock, t *InternTable) (*ColumnarSnapshot, error) {
	sw := vtime.NewStopwatch(clk)
	limit := m.Kern.Mem.Size()
	procs, err := kernel.CarveProcesses(m.Kern.ScanMem(), limit)
	if err != nil {
		return nil, fmt.Errorf("core: kmem-carve low scan: %w", err)
	}
	snap := buildProcSnapshot(t, ViewKernelCarve, procs)
	clk.ChargeOps(int64(limit/carvePageSize)+1, costPerCarvePage)
	snap.Taken = clk.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

// buildProcSnapshot shapes a ProcView list the way the process scanners
// do, so carve findings diff cleanly against list walks.
func buildProcSnapshot(t *InternTable, view View, procs []kernel.ProcView) *ColumnarSnapshot {
	bld := NewColumnarBuilder(t, KindProcesses, view, len(procs))
	var idBuf, dispBuf []byte
	for _, p := range procs {
		if p.Exited {
			continue
		}
		idBuf = appendPidUpperID(idBuf, p.Pid, p.Name)
		dispBuf = appendProcDisplay(dispBuf, p.Name, p.Pid)
		bld.AddRow(t.InternBytes(idBuf), t.InternStrBytes(dispBuf), p.ImagePath)
	}
	return bld.Build()
}

// CarveProcsFromDump applies the pool carve to a crash-dump memory
// image: the same sweep that runs on live memory runs offline, so a
// memory-only ghost is visible in the dump even if it could tamper with
// the live scan.
func CarveProcsFromDump(mem kmem.Reader, limit int) (*Snapshot, error) {
	snap := newSnapshot(KindProcesses, ViewCrashDump)
	procs, err := kernel.CarveProcesses(mem, limit)
	if err != nil {
		return nil, fmt.Errorf("core: crash-dump pool carve: %w", err)
	}
	for _, p := range procs {
		if p.Exited {
			continue
		}
		snap.add(Entry{ID: procID(p.Pid, p.Name), Display: procDisplay(p.Name, p.Pid), Detail: p.ImagePath})
	}
	return snap, nil
}

// --- boot-chain pair -----------------------------------------------------------

// scanBootHighC reads sector 0 through the hooked API chain and decodes
// it into regions against the machine's format-time baseline.
func scanBootHighC(m *machine.Machine, call *winapi.Call, t *InternTable) (*ColumnarSnapshot, error) {
	clk := clockFor(m, call)
	sw := vtime.NewStopwatch(clk)
	sector, err := m.API.ReadBootSectorWin32(call)
	if err != nil {
		return nil, fmt.Errorf("core: boot-chain high scan: %w", err)
	}
	snap, err := buildBootSnapshot(t, ViewBootAPI, sector, m.BootBaseline())
	if err != nil {
		return nil, fmt.Errorf("core: boot-chain high scan: %w", err)
	}
	snap.Taken = clk.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

// scanBootLowC reads sector 0 straight off the device, under the fault
// hook like every other raw scan (op "boot-read").
func scanBootLowC(m *machine.Machine, clk *vtime.Clock, t *InternTable) (*ColumnarSnapshot, error) {
	sw := vtime.NewStopwatch(clk)
	var sector []byte
	err := m.Disk.WithDeviceOp("boot-read", func(dev []byte) error {
		if len(dev) < ntfs.BytesPerSector {
			return fmt.Errorf("core: device shorter than one sector (%d bytes)", len(dev))
		}
		sector = append([]byte(nil), dev[:ntfs.BytesPerSector]...)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("core: boot-chain low scan: %w", err)
	}
	snap, err := buildBootSnapshot(t, ViewBootRaw, sector, m.BootBaseline())
	if err != nil {
		return nil, fmt.Errorf("core: boot-chain low scan: %w", err)
	}
	clk.ChargeBytes(ntfs.BytesPerSector, diskBytesPerSecond(m.Profile))
	snap.Taken = clk.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

func buildBootSnapshot(t *InternTable, view View, sector, baseline []byte) (*ColumnarSnapshot, error) {
	regions, err := ntfs.DecodeBootRegions(sector, baseline)
	if err != nil {
		return nil, err
	}
	bld := NewColumnarBuilder(t, KindBootChain, view, len(regions))
	for _, r := range regions {
		bld.Add(r.ID(), "boot sector "+r.Name, r.Status)
	}
	return bld.Build(), nil
}

// --- removable pair ------------------------------------------------------------

// scanRemovableHighC walks the removable drive through the API chain.
// An empty bay yields an empty snapshot: nothing attached, nothing to
// lie about.
func scanRemovableHighC(m *machine.Machine, call *winapi.Call, t *InternTable) (*ColumnarSnapshot, error) {
	clk := clockFor(m, call)
	sw := vtime.NewStopwatch(clk)
	entries, err := m.API.WalkTreeWin32(call, machine.RemovableDrive)
	if err != nil {
		if !errors.Is(err, machine.ErrNoMedia) {
			return nil, fmt.Errorf("core: removable high scan: %w", err)
		}
		entries = nil
	}
	bld := NewColumnarBuilder(t, KindFiles, ViewWin32Inside, len(entries))
	var idBuf, detBuf []byte
	for _, e := range entries {
		var sym Sym
		sym, idBuf = internFileID(t, idBuf, e.Path)
		detBuf = strconv.AppendUint(detBuf[:0], e.Size, 10)
		detBuf = append(detBuf, " bytes"...)
		bld.AddRow(sym, e.Path, t.InternStrBytes(detBuf))
	}
	snap := bld.Build()
	clk.ChargeOps(int64(len(entries)), costPerRepFileHigh)
	snap.Taken = clk.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}

// scanRemovableLowC raw-parses the removable device bytes — the stick's
// own MFT is the truth source, and it detaches with the hardware.
func scanRemovableLowC(m *machine.Machine, clk *vtime.Clock, t *InternTable) (*ColumnarSnapshot, error) {
	sw := vtime.NewStopwatch(clk)
	vol := m.RemovableVolume()
	if vol == nil {
		bld := NewColumnarBuilder(t, KindFiles, ViewRawRemovable, 0)
		snap := bld.Build()
		snap.Taken = clk.Now()
		snap.Elapsed = sw.Elapsed()
		return snap, nil
	}
	var snap *ColumnarSnapshot
	err := vol.WithDeviceOp("removable-scan", func(dev []byte) error {
		var err error
		snap, err = scanImageDriveC(dev, ViewRawRemovable, machine.RemovableDrive, 1, t)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("core: removable low scan: %w", err)
	}
	clk.ChargeBytes(int64(snap.Len())*ntfs.RecordSize, diskBytesPerSecond(m.Profile))
	clk.ChargeOps(int64(snap.Len()), costPerRepFileLow)
	snap.Taken = clk.Now()
	snap.Elapsed = sw.Elapsed()
	return snap, nil
}
