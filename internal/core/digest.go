package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// ComputeDigest returns the report's canonical-serialization digest:
// SHA-256 over the report's JSON form with Elapsed and Digest zeroed,
// hex-encoded. Virtual scan time is excluded deliberately — a warm
// cache or a resumed sweep legitimately changes how long a scan took,
// never what it found — so two scans that agree on every finding,
// skipped count, and degraded unit share a digest, and any tampering
// with the findings after the fact changes it.
func (r *Report) ComputeDigest() string {
	cp := *r
	cp.Elapsed = 0
	cp.Digest = ""
	data, err := json.Marshal(&cp)
	if err != nil {
		// Report marshaling cannot fail (plain structs and slices); a
		// failure here means the type itself broke.
		panic(fmt.Sprintf("core: report digest marshal: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Seal stamps the report with its canonical digest. Every report the
// diff engine emits is sealed; consumers that mutate a report must
// re-seal it or the digest check will, correctly, fail.
func (r *Report) Seal() { r.Digest = r.ComputeDigest() }

// VerifyDigest recomputes the canonical digest and checks it against
// the sealed one. An unsealed report fails: absence of evidence is not
// integrity.
func (r *Report) VerifyDigest() error {
	if r.Digest == "" {
		return fmt.Errorf("core: %v report %s vs %s is unsealed (no digest)", r.Kind, r.HighView, r.LowView)
	}
	if got := r.ComputeDigest(); got != r.Digest {
		return fmt.Errorf("core: %v report %s vs %s fails digest verification: sealed %s, content hashes %s — report altered after sealing",
			r.Kind, r.HighView, r.LowView, r.Digest[:12], got[:12])
	}
	return nil
}
