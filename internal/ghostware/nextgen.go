package ghostware

import "ghostbuster/internal/winapi"

// This file names the four next-generation families the detection
// matrix tracks. Each is a thin wrapper over the Composite atom lattice
// — the atoms are the reusable mechanism, the named entries are the
// corpus identities that -infect, the figures, and the docs refer to.
// Each family defeats a naive scanner configuration and is caught by
// exactly one counter:
//
//	Chameleon    adaptive evasion   → randomized ordering + cross-time
//	PhantomProc  memory-only        → kmem pool carve (live or dump)
//	BootViper    bootkit            → boot-chain inside-vs-raw diff
//	USBcat       removable payload  → removable-device truth source
//
// Construction is deterministic (no machine RNG), so repeated installs
// produce byte-identical artifacts — a property the corpus replay and
// the differential oracle both lean on.

// NewChameleon returns the adaptive-evasion family: two SSDT-hidden
// processes plus a watcher that unhides them whenever scan-shaped
// enumeration (a walk of the volume root) is observed. A fixed-order
// sweep that scans files before processes sees a clean process diff.
func NewChameleon() *Composite {
	c := NewComposite("cham", []Atom{
		{Kind: AtomEvasive, Level: winapi.LevelSSDT, Count: 2},
	})
	c.name = "Chameleon"
	c.class = "adaptive-evasion ghostware (next-gen)"
	return c
}

// NewPhantomProc returns the memory-only family: a process with no
// image file, scrubbed from the Active Process List and the CID handle
// table. No file, ASEP, or process pair sees it; the pool-tag carve of
// kernel memory (live or crash dump) does.
func NewPhantomProc() *Composite {
	c := NewComposite("phan", []Atom{
		{Kind: AtomMemOnly, Count: 1},
	})
	c.name = "PhantomProc"
	c.class = "memory-only ghostware (next-gen)"
	return c
}

// NewBootViper returns the bootkit family: a payload in the boot
// sector's bootstrap-code slack plus a filter-level sanitizer that
// hands inside readers the pristine pre-infection sector.
func NewBootViper() *Composite {
	c := NewComposite("bvip", []Atom{
		{Kind: AtomBootkit, Level: winapi.LevelFilter},
	})
	c.name = "BootViper"
	c.class = "bootkit (next-gen)"
	return c
}

// NewUSBcat returns the removable-device family: driver payloads
// dropped on the hot-pluggable E: volume and hidden from enumeration
// with a filter-level hook, after the USBcat pattern.
func NewUSBcat() *Composite {
	c := NewComposite("ucat", []Atom{
		{Kind: AtomUSBHide, Level: winapi.LevelFilter, Count: 2},
	})
	c.name = "USBcat"
	c.class = "removable-device ghostware (next-gen)"
	return c
}
