package ghostware

import (
	"strings"

	"ghostbuster/internal/machine"
	"ghostbuster/internal/winapi"
)

// --- ProBot SE [ZP] ---------------------------------------------------------------
//
// Commercial key-logger. Hijacks kernel-mode file- and Registry-query
// APIs by modifying their Service Dispatch Table entries (Figure 2).
// Installs four randomly named files (an exe, a dll and two drivers) and
// three ASEP hooks (two services and one Run entry), all hidden
// (Figures 3, 4).

// ProBotSE is the ProBot SE key-logger.
type ProBotSE struct {
	hider
	base string // random base name chosen at install
}

// NewProBotSE constructs the key-logger model.
func NewProBotSE() *ProBotSE {
	return &ProBotSE{hider: hider{
		name: "ProBot SE", class: "commercial key-logger",
		techniques: []Technique{
			{API: winapi.APIFileEnum, Level: winapi.LevelSSDT, Label: "Service Dispatch Table entry for file-query APIs"},
			{API: winapi.APIRegQuery, Level: winapi.LevelSSDT, Label: "Service Dispatch Table entry for Registry-query APIs"},
		},
	}}
}

// Base returns the random base name chosen at install.
func (g *ProBotSE) Base() string { return g.base }

// Install drops the four random-named files, sets three hidden ASEP
// hooks, and activates the SSDT hooks.
func (g *ProBotSE) Install(m *machine.Machine) error {
	g.base = randName(m)
	exe := `C:\WINDOWS\system32\` + g.base + `.exe`
	dll := `C:\WINDOWS\system32\` + g.base + `.dll`
	drv1 := `C:\WINDOWS\system32\drivers\` + g.base + `f.sys`
	drv2 := `C:\WINDOWS\system32\drivers\` + g.base + `k.sys` // keyboard driver
	g.hiddenFiles = []string{exe, dll, drv1, drv2}
	svc1 := `HKLM\SYSTEM\CurrentControlSet\Services\` + g.base + `f`
	svc2 := `HKLM\SYSTEM\CurrentControlSet\Services\` + g.base + `k`
	g.hiddenASEPs = []string{
		svc1, svc2,
		`HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\Run|` + g.base,
	}
	base := g.base
	act := func(m *machine.Machine) error {
		if _, err := m.StartProcess(base+".exe", exe); err != nil {
			return err
		}
		m.API.Install(winapi.NewFileHideHook(g.name, winapi.LevelSSDT,
			"SSDT file-query hook", nil,
			func(call *winapi.Call, e winapi.DirEntry) bool { return pathMatches(e.Path, base) }))
		m.API.Install(winapi.NewRegHideHook(g.name, winapi.LevelSSDT,
			"SSDT Registry-query hook", nil,
			func(call *winapi.Call, keyPath, subkey string) bool {
				return strings.HasSuffix(strings.ToUpper(keyPath), `\SERVICES`) && strings.HasPrefix(strings.ToUpper(subkey), strings.ToUpper(base))
			},
			func(call *winapi.Call, keyPath, valueName string) bool {
				return strings.HasSuffix(strings.ToUpper(keyPath), `\RUN`) && strings.EqualFold(valueName, base)
			}))
		return nil
	}
	if err := dropAndRegister(m, exe, "MZ probot", act); err != nil {
		return err
	}
	for _, f := range []string{dll, drv1, drv2} {
		if err := m.DropFile(f, []byte("MZ probot component")); err != nil {
			return err
		}
	}
	if _, err := serviceHook(m, g.base+"f", `System32\drivers\`+g.base+`f.sys`); err != nil {
		return err
	}
	if _, err := serviceHook(m, g.base+"k", g.base+`k.sys`); err != nil {
		return err
	}
	if _, err := runHook(m, g.base, exe); err != nil {
		return err
	}
	return act(m)
}

// --- Commercial file hiders [ZHF, ZHO, ZAH, ZF] --------------------------------------
//
// Hide Files 3.3, Hide Folders XP, Advanced Hide Folders, and File &
// Folder Protector all insert a filter driver into the file-system stack
// and hide whatever folders and files the user selects (Figure 2). The
// filter can scope its behaviour per process by examining the IRP's
// originating process — File & Folder Protector exempts its own manager
// UI, which this model reproduces.

// FileHider is one of the four commercial file-hiding products.
type FileHider struct {
	hider
	product   string // short install name
	targets   []string
	exemptExe string // process that still sees the hidden files
}

func newFileHider(displayName, product string, targets []string, exemptOwnUI bool) *FileHider {
	g := &FileHider{
		hider: hider{
			name: displayName, class: "commercial file hider",
			techniques: []Technique{
				{API: winapi.APIFileEnum, Level: winapi.LevelFilter, Label: "file-system filter driver [IFS]"},
			},
			hiddenFiles: append([]string(nil), targets...),
		},
		product: product,
		targets: targets,
	}
	if exemptOwnUI {
		g.exemptExe = product + ".exe"
	}
	return g
}

// NewHideFiles constructs Hide Files 3.3 hiding the given paths.
func NewHideFiles(targets []string) *FileHider {
	return newFileHider("Hide Files 3.3", "hidefiles", targets, false)
}

// NewHideFoldersXP constructs Hide Folders XP.
func NewHideFoldersXP(targets []string) *FileHider {
	return newFileHider("Hide Folders XP", "hfxp", targets, false)
}

// NewAdvancedHideFolders constructs Advanced Hide Folders.
func NewAdvancedHideFolders(targets []string) *FileHider {
	return newFileHider("Advanced Hide Folders", "ahf", targets, false)
}

// NewFileFolderProtector constructs File & Folder Protector, which
// exempts its own manager process from the filtering.
func NewFileFolderProtector(targets []string) *FileHider {
	return newFileHider("File & Folder Protector", "ffp", targets, true)
}

// ExemptProcess returns the image name that bypasses the filter ("" if
// none).
func (g *FileHider) ExemptProcess() string { return g.exemptExe }

// Install drops the product's (visible) program files, registers its
// filter-driver service, and activates the filter.
func (g *FileHider) Install(m *machine.Machine) error {
	dir := `C:\Program Files\` + g.product
	ui := dir + `\` + g.product + `.exe`
	drv := dir + `\` + g.product + `flt.sys`
	targets := g.targets
	exempt := g.exemptExe
	appliesTo := func(p winapi.Proc) bool {
		return exempt == "" || !strings.EqualFold(p.Name, exempt)
	}
	act := func(m *machine.Machine) error {
		if _, err := m.Kern.LoadDriver(drv); err != nil {
			return err
		}
		m.API.Install(winapi.NewFileHideHook(g.name, winapi.LevelFilter,
			"filter driver (IRP-scoped)", appliesTo,
			func(call *winapi.Call, e winapi.DirEntry) bool {
				up := strings.ToUpper(e.Path)
				for _, t := range targets {
					tu := strings.ToUpper(t)
					if up == tu || strings.HasPrefix(up, tu+`\`) {
						return true
					}
				}
				return false
			}))
		return nil
	}
	if err := dropAndRegister(m, drv, "MZ filter", act); err != nil {
		return err
	}
	if err := m.DropFile(ui, []byte("MZ manager UI")); err != nil {
		return err
	}
	if _, err := serviceHook(m, g.product+"flt", drv); err != nil {
		return err
	}
	return act(m)
}
