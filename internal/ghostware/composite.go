package ghostware

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"ghostbuster/internal/kernel"
	"ghostbuster/internal/machine"
	"ghostbuster/internal/ntfs"
	"ghostbuster/internal/winapi"
)

// This file provides the composable technique constructors the ghostfuzz
// adversary generator draws from: a Composite assembles hiding "atoms"
// from the full technique lattice (hook-based hiding at any interception
// level × any resource type, plus the hookless tricks — Win32-restricted
// names, ADS payloads, NUL/over-long Registry names, DKOM — and the §5
// targeting and decoy behaviours). Every artifact name is derived purely
// from the atom's position in the list, never from the machine RNG, so a
// shrunk atom list replays the surviving atoms byte-for-byte.

// AtomKind selects one hiding technique.
type AtomKind int

// The technique lattice.
const (
	// AtomFileHide drops files and hides them with an enumeration filter
	// at the atom's Level.
	AtomFileHide AtomKind = iota + 1
	// AtomWin32Name drops files whose names Win32 cannot address
	// (trailing dot/space, reserved device names). No hook anywhere.
	AtomWin32Name
	// AtomADS tucks payloads into alternate data streams of an innocent
	// carrier file. No hook anywhere.
	AtomADS
	// AtomRegHide creates ASEP hooks (Run values and service keys) and
	// hides them with a Registry-query filter at the atom's Level.
	AtomRegHide
	// AtomRegNul creates Run values with embedded-NUL or over-long
	// counted-string names via the Native API. No hook anywhere.
	AtomRegNul
	// AtomProcHide starts processes and hides them with a
	// process-enumeration filter at the atom's Level.
	AtomProcHide
	// AtomProcDKOM starts processes and unlinks their EPROCESS from the
	// Active Process List (the FU technique). No hook anywhere.
	AtomProcDKOM
	// AtomModHide loads DLLs into explorer.exe and hides them with a
	// module-enumeration filter at the atom's Level.
	AtomModHide
	// AtomDecoy hides Count innocent files together with its payload
	// (the §5 mass-hiding attack) at the atom's Level.
	AtomDecoy
	// AtomEvasive starts processes and hides them with an ADAPTIVE
	// process filter: a companion watcher hook observes directory
	// enumeration, and when it sees a scan-shaped signature (an
	// enumeration of the volume root — every full file walk starts
	// there), the filter unhides for a window so a cross-view diff that
	// walked files first sees nothing. Countered by randomized scan-unit
	// ordering and cross-time diffing.
	AtomEvasive
	// AtomMemOnly starts processes and scrubs them from the Active
	// Process List AND the CID handle table, keeping zero file/Registry
	// footprint of its own. Only a pool-tag carve of kernel memory (live
	// or crash dump) sees the EPROCESS allocation.
	AtomMemOnly
	// AtomBootkit writes its payload into the boot sector's bootstrap-
	// code slack (below every file) and hooks the boot-sector read API to
	// hand back the pristine pre-infection sector. Countered by the
	// boot-chain truth source: inside read vs raw device bytes.
	AtomBootkit
	// AtomUSBHide drops payloads on the removable E: volume and hides
	// them with an enumeration filter at the atom's Level (the USBcat
	// pattern). Countered by the removable-device truth source.
	AtomUSBHide
)

// kindCodes maps atom kinds to the one-letter code used in artifact
// names and spec lines.
var kindCodes = map[AtomKind]string{
	AtomFileHide: "f", AtomWin32Name: "w", AtomADS: "a",
	AtomRegHide: "k", AtomRegNul: "r",
	AtomProcHide: "p", AtomProcDKOM: "q",
	AtomModHide: "m", AtomDecoy: "d",
	AtomEvasive: "v", AtomMemOnly: "y",
	AtomBootkit: "b", AtomUSBHide: "u",
}

// String names the atom kind as spec lines spell it.
func (k AtomKind) String() string {
	switch k {
	case AtomFileHide:
		return "file"
	case AtomWin32Name:
		return "win32"
	case AtomADS:
		return "ads"
	case AtomRegHide:
		return "reg"
	case AtomRegNul:
		return "regnul"
	case AtomProcHide:
		return "proc"
	case AtomProcDKOM:
		return "dkom"
	case AtomModHide:
		return "mod"
	case AtomDecoy:
		return "decoy"
	case AtomEvasive:
		return "evasive"
	case AtomMemOnly:
		return "memonly"
	case AtomBootkit:
		return "bootkit"
	case AtomUSBHide:
		return "usbhide"
	default:
		return "unknown"
	}
}

// Hooked reports whether the kind installs an API filter (and therefore
// has a meaningful Level and Scope).
func (k AtomKind) Hooked() bool {
	switch k {
	case AtomFileHide, AtomRegHide, AtomProcHide, AtomModHide, AtomDecoy,
		AtomEvasive, AtomBootkit, AtomUSBHide:
		return true
	}
	return false
}

// Scope is the §5 targeting dimension: which processes experience the
// lie.
type Scope int

// Targeting scopes.
const (
	// ScopeAll lies to every process.
	ScopeAll Scope = iota
	// ScopeUtilities lies only to the common OS utilities (Task Manager,
	// tlist, Explorer, cmd, RegEdit) — the HideFromUtilities strategy.
	ScopeUtilities
	// ScopeExcept lies to everything except the process named
	// ExemptName.
	ScopeExcept
)

// Atom is one hiding technique instance inside a Composite.
type Atom struct {
	Kind AtomKind
	// Level is the interception level for Hooked() kinds; ignored (and
	// normalized to LevelNone) otherwise.
	Level winapi.Level
	// Count is how many artifacts the atom plants (files, values,
	// processes, modules; for AtomDecoy, innocent files). Zero means 1.
	Count int
	// Scope selects the §5 targeting behaviour for Hooked() kinds.
	Scope Scope
	// ExemptName is the process spared the lie when Scope is
	// ScopeExcept.
	ExemptName string
}

func (a Atom) count() int {
	if a.Count <= 0 {
		return 1
	}
	return a.Count
}

// appliesTo converts the atom's scope to a hook predicate (nil = every
// caller).
func (a Atom) appliesTo() func(winapi.Proc) bool {
	switch a.Scope {
	case ScopeUtilities:
		return func(p winapi.Proc) bool { return utilityNames[strings.ToUpper(p.Name)] }
	case ScopeExcept:
		name := a.ExemptName
		return func(p winapi.Proc) bool { return !strings.EqualFold(p.Name, name) }
	default:
		return nil
	}
}

// tag is the unique uppercase name fragment every artifact of atom i
// carries: "GFZ" + kind letter + index + "X". The trailing X stops an
// index from matching a longer index's prefix.
func atomTag(i int, k AtomKind) string {
	return strings.ToUpper(fmt.Sprintf("gfz%s%dx", kindCodes[k], i))
}

const (
	compositeDir    = `C:\WINDOWS\system32`
	compositeRunKey = `HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\Run`
	compositeSvcKey = `HKLM\SYSTEM\CurrentControlSet\Services`
)

// Composite is a generated ghostware assembled from technique atoms. It
// implements Ghostware plus module ground truth (HiddenModules), and it
// registers a visible loader ASEP so its volatile behaviour — hooks,
// processes, DKOM unlinks, module injections — reinstalls at every
// boot, exactly as real ghostware survives reboots.
type Composite struct {
	hider
	atoms      []Atom
	hiddenMods []string // uppercase DLL base-name fragments
	loaderExe  string

	// Next-generation ground truth, kept out of the classic fields
	// because the paper's four pairs do NOT see these artifacts — each
	// has its own counter-unit.
	hiddenEvasive   []string // evasive process image names
	hiddenMemOnly   []string // memory-only process image names
	hiddenBoot      []string // tampered boot-sector region names
	hiddenRemovable []string // full E:\ paths of hidden removable payloads
}

// EvasiveProcs returns image names of adaptive-evasion processes: hidden
// from a fixed-order sweep, exposed by randomized ordering or cross-time
// diffing.
func (c *Composite) EvasiveProcs() []string { return append([]string(nil), c.hiddenEvasive...) }

// MemOnlyProcs returns image names of memory-only processes, visible
// solely to the pool-carve scan.
func (c *Composite) MemOnlyProcs() []string { return append([]string(nil), c.hiddenMemOnly...) }

// BootRegions returns boot-sector region names the composite tampers
// with ("CODE").
func (c *Composite) BootRegions() []string { return append([]string(nil), c.hiddenBoot...) }

// RemovableFiles returns full paths of hidden payloads on the removable
// volume.
func (c *Composite) RemovableFiles() []string { return append([]string(nil), c.hiddenRemovable...) }

// Atoms returns the technique list (copies).
func (c *Composite) Atoms() []Atom { return append([]Atom(nil), c.atoms...) }

// HiddenModules returns uppercase DLL base names the composite hides
// from module enumeration (match findings by substring).
func (c *Composite) HiddenModules() []string { return append([]string(nil), c.hiddenMods...) }

// LoaderExe returns the visible loader image that reinstalls the
// composite at boot.
func (c *Composite) LoaderExe() string { return c.loaderExe }

// NewComposite assembles a ghostware from atoms. The label personalizes
// loader names so several composites can coexist on one fleet host; it
// must be a plain letters-and-digits token.
func NewComposite(label string, atoms []Atom) *Composite {
	c := &Composite{
		hider: hider{
			name:  "Composite-" + label,
			class: "generated ghostware (ghostfuzz)",
		},
		atoms:     append([]Atom(nil), atoms...),
		loaderExe: compositeDir + `\gfzldr` + label + `.exe`,
	}
	for i, a := range c.atoms {
		if !a.Kind.Hooked() {
			c.atoms[i].Level = winapi.LevelNone
		}
		c.declare(i, c.atoms[i])
	}
	return c
}

// declare computes atom i's ground-truth artifacts and technique rows.
func (c *Composite) declare(i int, a Atom) {
	tag := strings.ToLower(atomTag(i, a.Kind))
	n := a.count()
	label := fmt.Sprintf("%s hiding at %v (atom %d)", a.Kind, a.Level, i)
	switch a.Kind {
	case AtomFileHide:
		c.techniques = append(c.techniques, Technique{API: winapi.APIFileEnum, Level: a.Level, Label: label})
		for j := 0; j < n; j++ {
			c.hiddenFiles = append(c.hiddenFiles, fmt.Sprintf(`%s\%s%d.exe`, compositeDir, tag, j))
		}
	case AtomWin32Name:
		c.techniques = append(c.techniques, Technique{API: winapi.APIFileEnum, Level: winapi.LevelNone, Label: "Win32-unaddressable filenames"})
		for j := 0; j < n; j++ {
			c.hiddenFiles = append(c.hiddenFiles, win32TrickPath(tag, j))
		}
	case AtomADS:
		c.techniques = append(c.techniques, Technique{API: winapi.APIFileEnum, Level: winapi.LevelNone, Label: "payload in alternate data streams"})
		host := adsHostPath(tag)
		for j := 0; j < n; j++ {
			c.hiddenFiles = append(c.hiddenFiles, fmt.Sprintf("%s:s%d", host, j))
		}
	case AtomRegHide:
		c.techniques = append(c.techniques, Technique{API: winapi.APIRegQuery, Level: a.Level, Label: label})
		for j := 0; j < n; j++ {
			name := fmt.Sprintf("%s%d", tag, j)
			if j%2 == 0 {
				c.hiddenASEPs = append(c.hiddenASEPs, compositeRunKey+"|"+name)
			} else {
				c.hiddenASEPs = append(c.hiddenASEPs, compositeSvcKey+`\`+name)
			}
		}
	case AtomRegNul:
		c.techniques = append(c.techniques, Technique{API: winapi.APIRegQuery, Level: winapi.LevelNone, Label: "embedded-NUL and over-long counted-string names"})
		for j := 0; j < n; j++ {
			c.hiddenASEPs = append(c.hiddenASEPs, compositeRunKey+"|"+regNulValueName(tag, j))
		}
	case AtomProcHide:
		c.techniques = append(c.techniques, Technique{API: winapi.APIProcEnum, Level: a.Level, Label: label})
		for j := 0; j < n; j++ {
			c.hiddenProcs = append(c.hiddenProcs, fmt.Sprintf("%s%d.exe", tag, j))
		}
	case AtomProcDKOM:
		c.techniques = append(c.techniques, Technique{API: winapi.APIProcEnum, Level: winapi.LevelNone, Label: "DKOM: unlinks EPROCESS from the Active Process List"})
		for j := 0; j < n; j++ {
			c.hiddenProcs = append(c.hiddenProcs, fmt.Sprintf("%s%d.exe", tag, j))
		}
	case AtomModHide:
		c.techniques = append(c.techniques, Technique{API: winapi.APIModEnum, Level: a.Level, Label: label})
		for j := 0; j < n; j++ {
			c.hiddenMods = append(c.hiddenMods, strings.ToUpper(fmt.Sprintf("%s%d.dll", tag, j)))
		}
	case AtomDecoy:
		c.techniques = append(c.techniques, Technique{API: winapi.APIFileEnum, Level: a.Level, Label: fmt.Sprintf("mass-hides %d innocents plus payload (atom %d)", n, i)})
		dir := decoyDir(tag)
		c.hiddenFiles = append(c.hiddenFiles, dir)
		for j := 0; j < n; j++ {
			c.hiddenFiles = append(c.hiddenFiles, fmt.Sprintf(`%s\doc%04d.txt`, dir, j))
		}
		c.hiddenFiles = append(c.hiddenFiles, decoyPayload(tag))
	case AtomEvasive:
		c.techniques = append(c.techniques, Technique{API: winapi.APIProcEnum, Level: a.Level, Label: fmt.Sprintf("adaptive evasion: unhides during scan-shaped enumeration (atom %d)", i)})
		for j := 0; j < n; j++ {
			c.hiddenEvasive = append(c.hiddenEvasive, fmt.Sprintf("%s%d.exe", tag, j))
		}
	case AtomMemOnly:
		c.techniques = append(c.techniques, Technique{API: winapi.APIProcEnum, Level: winapi.LevelNone, Label: "memory-only: scrubbed from the APL and the CID handle table, zero disk footprint"})
		for j := 0; j < n; j++ {
			c.hiddenMemOnly = append(c.hiddenMemOnly, fmt.Sprintf("%s%d.exe", tag, j))
		}
	case AtomBootkit:
		c.techniques = append(c.techniques, Technique{API: winapi.APIBootRead, Level: a.Level, Label: fmt.Sprintf("bootkit: payload in boot-sector code slack, sanitized inside reads (atom %d)", i)})
		c.hiddenBoot = append(c.hiddenBoot, "CODE")
	case AtomUSBHide:
		c.techniques = append(c.techniques, Technique{API: winapi.APIFileEnum, Level: a.Level, Label: fmt.Sprintf("removable-device payload hidden from enumeration (atom %d)", i)})
		for j := 0; j < n; j++ {
			c.hiddenRemovable = append(c.hiddenRemovable, fmt.Sprintf(`%s\%s%d.sys`, machine.RemovableDrive, tag, j))
		}
	}
}

func win32TrickPath(tag string, j int) string {
	base := fmt.Sprintf(`%s\%s%d`, compositeDir, tag, j)
	switch j % 3 {
	case 0:
		return base + "." // trailing dot
	case 1:
		return base + " " // trailing space
	default:
		return fmt.Sprintf(`%s\NUL.%s%d`, compositeDir, tag, j) // reserved device base name
	}
}

func adsHostPath(tag string) string   { return fmt.Sprintf(`%s\%s-host.txt`, compositeDir, tag) }
func decoyDir(tag string) string      { return `C:\` + tag }
func decoyPayload(tag string) string  { return fmt.Sprintf(`%s\%spay.exe`, compositeDir, tag) }
func regNulPayload(tag string) string { return fmt.Sprintf(`%s\%spay.exe`, compositeDir, tag) }
func regHidePayload(tag string, j int) string {
	return fmt.Sprintf(`%s\%s%d.exe`, compositeDir, tag, j)
}

func regNulValueName(tag string, j int) string {
	if j%2 == 0 {
		return fmt.Sprintf("%s%d\x00drv", tag, j)
	}
	// Over-long counted-string name: invisible to Win32 readers.
	return fmt.Sprintf("%s%d", tag, j) + strings.Repeat("A", 256)
}

// Install drops every persistent artifact, creates the ASEP hooks, and
// registers + runs the loader activation (hooks, processes, DKOM,
// module loads). The loader itself — file, Run value — is deliberately
// visible: the stealth budget is spent on the atoms.
func (c *Composite) Install(m *machine.Machine) error {
	act := c.activation()
	if err := dropAndRegister(m, c.loaderExe, "MZ gfz loader", act); err != nil {
		return err
	}
	if _, err := runHook(m, baseName(strings.TrimSuffix(c.loaderExe, ".exe")), c.loaderExe); err != nil {
		return err
	}
	for i, a := range c.atoms {
		if err := c.installPersistent(m, i, a); err != nil {
			return fmt.Errorf("ghostware: composite atom %d (%v): %w", i, a.Kind, err)
		}
	}
	return act(m)
}

// installPersistent lays down atom i's on-disk and in-hive state.
func (c *Composite) installPersistent(m *machine.Machine, i int, a Atom) error {
	tag := strings.ToLower(atomTag(i, a.Kind))
	n := a.count()
	switch a.Kind {
	case AtomFileHide:
		for j := 0; j < n; j++ {
			if err := m.DropFile(fmt.Sprintf(`%s\%s%d.exe`, compositeDir, tag, j), []byte("MZ gfz file")); err != nil {
				return err
			}
		}
	case AtomWin32Name:
		for j := 0; j < n; j++ {
			if err := m.DropFile(win32TrickPath(tag, j), []byte("MZ gfz name trick")); err != nil {
				return err
			}
		}
	case AtomADS:
		host := adsHostPath(tag)
		if err := m.DropFile(host, []byte("perfectly ordinary notes")); err != nil {
			return err
		}
		vp, err := machine.VolumePath(host)
		if err != nil {
			return err
		}
		for j := 0; j < n; j++ {
			if err := m.Disk.CreateStream(vp, fmt.Sprintf("s%d", j), []byte("MZ gfz ads payload")); err != nil {
				return err
			}
		}
	case AtomRegHide:
		for j := 0; j < n; j++ {
			name := fmt.Sprintf("%s%d", tag, j)
			payload := regHidePayload(tag, j)
			if err := m.DropFile(payload, []byte("MZ gfz asep payload")); err != nil {
				return err
			}
			if j%2 == 0 {
				if _, err := runHook(m, name, payload); err != nil {
					return err
				}
			} else if _, err := serviceHook(m, name, payload); err != nil {
				return err
			}
		}
	case AtomRegNul:
		payload := regNulPayload(tag)
		if err := m.DropFile(payload, []byte("MZ gfz nul payload")); err != nil {
			return err
		}
		for j := 0; j < n; j++ {
			if err := m.Reg.SetString(compositeRunKey, regNulValueName(tag, j), payload); err != nil {
				return err
			}
		}
	case AtomProcHide, AtomProcDKOM, AtomEvasive:
		for j := 0; j < n; j++ {
			if err := m.DropFile(fmt.Sprintf(`%s\%s%d.exe`, compositeDir, tag, j), []byte("MZ gfz proc")); err != nil {
				return err
			}
		}
	case AtomModHide:
		for j := 0; j < n; j++ {
			if err := m.DropFile(fmt.Sprintf(`%s\%s%d.dll`, compositeDir, tag, j), []byte("MZ gfz module")); err != nil {
				return err
			}
		}
	case AtomDecoy:
		for j := 0; j < n; j++ {
			if err := m.DropFile(fmt.Sprintf(`%s\doc%04d.txt`, decoyDir(tag), j), []byte("innocent user document")); err != nil {
				return err
			}
		}
		if err := m.DropFile(decoyPayload(tag), []byte("MZ gfz decoy payload")); err != nil {
			return err
		}
	case AtomMemOnly:
		// Deliberately nothing: the whole point is zero file and Registry
		// footprint. The (visible) composite loader re-runs the activation
		// at every boot, which is how real memory-only malware persists —
		// through some other component, not through its own artifacts.
	case AtomBootkit:
		payload := []byte("GFZBOOT " + tag)
		off := ntfs.BootCodeOff + (i*31)%(ntfs.BootCodeLen-len(payload))
		if err := m.WriteDeviceBytes(off, payload); err != nil {
			return err
		}
	case AtomUSBHide:
		m.EnsureRemovable()
		for j := 0; j < n; j++ {
			full := fmt.Sprintf(`%s\%s%d.sys`, machine.RemovableDrive, tag, j)
			if err := m.DropRemovableFile(full, []byte("MZ gfz usb payload")); err != nil {
				return err
			}
		}
	}
	return nil
}

// activation builds the boot-time (re)install: every volatile behaviour
// of every atom, in atom order.
func (c *Composite) activation() machine.Activation {
	atoms := append([]Atom(nil), c.atoms...)
	owner := c.name
	return func(m *machine.Machine) error {
		for i, a := range atoms {
			if err := activateAtom(m, owner, i, a); err != nil {
				return fmt.Errorf("ghostware: composite atom %d (%v) activation: %w", i, a.Kind, err)
			}
		}
		return nil
	}
}

func activateAtom(m *machine.Machine, owner string, i int, a Atom) error {
	tag := atomTag(i, a.Kind)
	lower := strings.ToLower(tag)
	n := a.count()
	applies := a.appliesTo()
	switch a.Kind {
	case AtomFileHide:
		m.API.Install(winapi.NewFileHideHook(owner, a.Level, "generated file filter", applies,
			func(call *winapi.Call, e winapi.DirEntry) bool { return pathMatches(e.Path, tag) }))
	case AtomRegHide:
		m.API.Install(winapi.NewRegHideHook(owner, a.Level, "generated Registry filter", applies,
			func(call *winapi.Call, keyPath, subkey string) bool {
				return strings.HasSuffix(strings.ToUpper(keyPath), `\SERVICES`) && strings.HasPrefix(strings.ToUpper(subkey), tag)
			},
			func(call *winapi.Call, keyPath, valueName string) bool {
				return strings.HasSuffix(strings.ToUpper(keyPath), `\RUN`) && strings.HasPrefix(strings.ToUpper(valueName), tag)
			}))
	case AtomProcHide:
		m.API.Install(winapi.NewProcHideHook(owner, a.Level, "generated process filter", applies,
			func(call *winapi.Call, p winapi.ProcEntry) bool {
				return strings.Contains(strings.ToUpper(p.Name), tag)
			}))
		for j := 0; j < n; j++ {
			name := fmt.Sprintf("%s%d.exe", lower, j)
			if _, err := m.StartProcess(name, compositeDir+`\`+name); err != nil {
				return err
			}
		}
	case AtomProcDKOM:
		for j := 0; j < n; j++ {
			name := fmt.Sprintf("%s%d.exe", lower, j)
			pid, err := m.StartProcess(name, compositeDir+`\`+name)
			if err != nil {
				return err
			}
			eproc, err := m.Kern.EprocessByPid(pid)
			if err != nil {
				return err
			}
			if err := m.Kern.Mem.ListRemove(eproc + kernel.EprocActiveLinks); err != nil {
				return err
			}
		}
	case AtomModHide:
		m.API.Install(winapi.NewModHideHook(owner, a.Level, "generated module filter", applies,
			func(call *winapi.Call, mod winapi.ModEntry) bool { return pathMatches(mod.Path, tag) }))
		pid, err := m.Kern.PidByName("explorer.exe")
		if err != nil {
			return err
		}
		for j := 0; j < n; j++ {
			if _, err := m.Kern.LoadModule(pid, fmt.Sprintf(`%s\%s%d.dll`, compositeDir, lower, j)); err != nil {
				return err
			}
		}
	case AtomDecoy:
		dir := strings.ToUpper(decoyDir(lower))
		m.API.Install(winapi.NewFileHideHook(owner, a.Level, "generated mass-hide filter", applies,
			func(call *winapi.Call, e winapi.DirEntry) bool {
				up := strings.ToUpper(e.Path)
				if up == dir || strings.HasPrefix(up, dir+`\`) {
					return true
				}
				return pathMatches(e.Path, tag+"PAY")
			}))
	case AtomEvasive:
		// Two cooperating hooks share one trigger: the watcher observes
		// directory enumeration and fires on the scan signature (an
		// enumeration of the system volume root — every full file walk
		// starts there); the process filter lies only while the trigger is
		// cold. A sweep that walks files before processes therefore sees
		// the process in BOTH views (clean diff); only an ordering the
		// ghost cannot predict catches the hide in the act.
		watch := &evasiveState{window: evasiveWindow}
		m.API.Install(winapi.NewFileEnumWatchHook(owner, a.Level, "scan-signature watcher",
			func(call *winapi.Call, dir string) {
				if strings.EqualFold(strings.TrimSuffix(dir, `\`), machine.Drive) {
					watch.trigger(callNow(m, call))
				}
			}))
		m.API.Install(winapi.NewProcHideHook(owner, a.Level, "adaptive process filter", applies,
			func(call *winapi.Call, p winapi.ProcEntry) bool {
				if watch.active(callNow(m, call)) {
					return false // scan-shaped activity seen: act innocent
				}
				return strings.Contains(strings.ToUpper(p.Name), tag)
			}))
		for j := 0; j < n; j++ {
			name := fmt.Sprintf("%s%d.exe", lower, j)
			if _, err := m.StartProcess(name, compositeDir+`\`+name); err != nil {
				return err
			}
		}
	case AtomMemOnly:
		// Empty image path: the process has no on-disk backing at all.
		for j := 0; j < n; j++ {
			pid, err := m.StartProcess(fmt.Sprintf("%s%d.exe", lower, j), "")
			if err != nil {
				return err
			}
			if err := m.Kern.ConcealProcess(pid); err != nil {
				return err
			}
		}
	case AtomBootkit:
		m.API.Install(winapi.NewBootSanitizeHook(owner, a.Level, "boot-read sanitizer", applies, m.BootBaseline()))
	case AtomUSBHide:
		m.API.Install(winapi.NewFileHideHook(owner, a.Level, "removable payload filter", applies,
			func(call *winapi.Call, e winapi.DirEntry) bool { return pathMatches(e.Path, tag) }))
	}
	return nil
}

// evasiveWindow is how long an evasive atom stays unhidden after seeing
// scan-shaped activity. Long enough to outlast any one sweep; the
// counter is ordering the ghost cannot predict, not outwaiting it.
const evasiveWindow = 2 * time.Hour

// evasiveState is the trigger shared between an evasive atom's watcher
// and its process filter. Virtual-time based: "now" comes from the
// calling sweep's clock, so the window is deterministic under replay.
type evasiveState struct {
	mu     sync.Mutex
	until  time.Duration
	window time.Duration
}

func (s *evasiveState) trigger(now time.Duration) {
	s.mu.Lock()
	if t := now + s.window; t > s.until {
		s.until = t
	}
	s.mu.Unlock()
}

func (s *evasiveState) active(now time.Duration) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return now < s.until
}

// callNow returns the current virtual time as hook code sees it: the
// calling sweep's clock when one is attached, the machine wall clock
// otherwise.
func callNow(m *machine.Machine, call *winapi.Call) time.Duration {
	if call != nil && call.Clock != nil {
		return call.Clock.Now()
	}
	return m.Clock.Now()
}
