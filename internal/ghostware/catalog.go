package ghostware

import (
	"strings"

	"ghostbuster/internal/machine"
)

// CatalogEntry describes one installable corpus sample: its identity, a
// fresh-instance constructor, and (when the sample needs one) the
// post-install step that arms its hiding. The entry is the single source
// of truth the figure corpora, the command-line tools, and the ghostfuzz
// calibration pass all iterate.
type CatalogEntry struct {
	// Name is the program's name as the paper uses it (and as -infect
	// accepts it).
	Name string
	// Class mirrors Ghostware.Class for listings that don't want to
	// construct an instance.
	Class string
	// New returns a fresh instance. Every experiment must construct its
	// own: instances carry per-install state (random names, hidden pids).
	New func() Ghostware
	// Arm performs the sample's post-install step, if it has one. FU
	// drops its driver at install but hides nothing until the operator
	// runs "fu -ph <pid>"; Arm models that command against a helper
	// victim process. Nil for samples that are fully armed by Install.
	Arm func(m *machine.Machine, g Ghostware) error
	// Extension marks adversaries beyond the paper's 12-sample
	// evaluation corpus (§5/§6 attackers and natural escalations).
	Extension bool
}

// FUVictimImage is the helper process the catalog's FU entry hides (the
// "fu -ph <pid>" target).
const FUVictimImage = `C:\fu\fuvictim.exe`

// Catalog returns the paper's 12-sample evaluation corpus (Figures 3, 4
// and 6) in Figure-3 order followed by the two volatile-only hiders.
// The per-figure corpora, cmd/ghostbuster's -infect table and the
// ghostfuzz calibration pass all derive from this list.
func Catalog() []CatalogEntry {
	return []CatalogEntry{
		{Name: "Urbin", Class: "trojan (in the wild)", New: func() Ghostware { return NewUrbin() }},
		{Name: "Mersting", Class: "trojan (in the wild)", New: func() Ghostware { return NewMersting() }},
		{Name: "Vanquish", Class: "rootkit", New: func() Ghostware { return NewVanquish() }},
		{Name: "Aphex", Class: "rootkit", New: func() Ghostware { return NewAphex() }},
		{Name: "Hacker Defender 1.0", Class: "rootkit", New: func() Ghostware { return NewHackerDefender() }},
		{Name: "ProBot SE", Class: "commercial key-logger", New: func() Ghostware { return NewProBotSE() }},
		{Name: "Hide Files 3.3", Class: "commercial file hider", New: func() Ghostware { return NewHideFiles(DefaultHiderTargets) }},
		{Name: "Hide Folders XP", Class: "commercial file hider", New: func() Ghostware { return NewHideFoldersXP(DefaultHiderTargets) }},
		{Name: "Advanced Hide Folders", Class: "commercial file hider", New: func() Ghostware { return NewAdvancedHideFolders(DefaultHiderTargets) }},
		{Name: "File & Folder Protector", Class: "commercial file hider", New: func() Ghostware { return NewFileFolderProtector(DefaultHiderTargets) }},
		{Name: "Berbew", Class: "backdoor", New: func() Ghostware { return NewBerbew() }},
		{Name: "FU", Class: "rootkit (DKOM)", New: func() Ghostware { return NewFU() },
			Arm: func(m *machine.Machine, g Ghostware) error {
				fu := g.(*FU)
				if _, err := m.StartProcess("fuvictim.exe", FUVictimImage); err != nil {
					return err
				}
				return fu.HideByName(m, "fuvictim.exe")
			}},
	}
}

// Extensions returns the adversaries beyond the 12-sample corpus: the
// pure name-trick hiders, the ADS hider, the driver-hiding escalation,
// and the §5 targeting/decoy attackers.
func Extensions() []CatalogEntry {
	ext := func(e CatalogEntry) CatalogEntry { e.Extension = true; return e }
	return []CatalogEntry{
		ext(CatalogEntry{Name: "Win32NameGhost", Class: "name-trick hider", New: func() Ghostware { return NewWin32NameGhost() }}),
		ext(CatalogEntry{Name: "RegNullGhost", Class: "name-trick hider", New: func() Ghostware { return NewRegNullGhost() }}),
		ext(CatalogEntry{Name: "ADSGhost", Class: "ADS hider (§6 future work)", New: func() Ghostware { return NewADSGhost() }}),
		ext(CatalogEntry{Name: "DriverHider", Class: "driver-hiding rootkit (extension)", New: func() Ghostware { return NewDriverHider() }}),
		ext(CatalogEntry{Name: "Targeted", Class: "targeting ghostware (§5)", New: func() Ghostware { return NewTargeted(HideFromUtilities) }}),
		ext(CatalogEntry{Name: "Decoy", Class: "mass-hiding attacker (§5)", New: func() Ghostware { return NewDecoy([]string{`C:\Shared`}) }}),
		ext(CatalogEntry{Name: "Chameleon", Class: "adaptive-evasion ghostware (next-gen)", New: func() Ghostware { return NewChameleon() }}),
		ext(CatalogEntry{Name: "PhantomProc", Class: "memory-only ghostware (next-gen)", New: func() Ghostware { return NewPhantomProc() }}),
		ext(CatalogEntry{Name: "BootViper", Class: "bootkit (next-gen)", New: func() Ghostware { return NewBootViper() }}),
		ext(CatalogEntry{Name: "USBcat", Class: "removable-device ghostware (next-gen)", New: func() Ghostware { return NewUSBcat() }}),
	}
}

// Lookup finds a catalog or extension entry by (case-insensitive) name.
func Lookup(name string) (CatalogEntry, bool) {
	for _, e := range append(Catalog(), Extensions()...) {
		if strings.EqualFold(e.Name, name) {
			return e, true
		}
	}
	return CatalogEntry{}, false
}

// fromCatalog constructs fresh instances of the named samples, in the
// given order, panicking on a name the catalog does not know (a
// programming error in a figure listing, caught by the catalog tests).
func fromCatalog(names ...string) []Ghostware {
	out := make([]Ghostware, 0, len(names))
	for _, n := range names {
		e, ok := Lookup(n)
		if !ok {
			panic("ghostware: no catalog entry named " + n)
		}
		out = append(out, e.New())
	}
	return out
}
