package ghostware

import (
	"fmt"
	"strings"

	"ghostbuster/internal/machine"
	"ghostbuster/internal/winapi"
)

// --- pure name-trick hiders (no interception at all) --------------------------------

// Win32NameGhost hides files by exploiting the gap between what NTFS
// stores and what the Win32 API can address (§2): trailing dots and
// spaces, reserved device names, over-long paths. It installs no hook
// anywhere — hook detectors are structurally blind to it.
type Win32NameGhost struct{ hider }

// NewWin32NameGhost constructs the name-trick hider.
func NewWin32NameGhost() *Win32NameGhost {
	return &Win32NameGhost{hider{
		name: "Win32NameGhost", class: "name-trick hider",
		techniques: []Technique{
			{API: winapi.APIFileEnum, Level: winapi.LevelNone, Label: "filenames NTFS stores but Win32 cannot address"},
		},
		hiddenFiles: []string{
			`C:\WINDOWS\system32\wincfg.`,
			`C:\WINDOWS\system32\update `,
			`C:\WINDOWS\system32\NUL.sys`,
			`C:\WINDOWS\system32\COM7`,
		},
	}}
}

// Install creates the Win32-hostile files through low-level (native)
// file APIs.
func (g *Win32NameGhost) Install(m *machine.Machine) error {
	for _, p := range g.hiddenFiles {
		if err := m.DropFile(p, []byte("MZ hidden by naming")); err != nil {
			return fmt.Errorf("ghostware: win32 name trick %q: %w", p, err)
		}
	}
	return nil
}

// RegNullGhost hides Registry ASEP hooks with embedded-NUL and over-long
// value names created through the Native API (§3). No hook installed.
type RegNullGhost struct{ hider }

// NewRegNullGhost constructs the Registry name-trick hider.
func NewRegNullGhost() *RegNullGhost {
	return &RegNullGhost{hider{
		name: "RegNullGhost", class: "name-trick hider",
		techniques: []Technique{
			{API: winapi.APIRegQuery, Level: winapi.LevelNone, Label: "embedded-NUL and over-long counted-string names"},
		},
		hiddenFiles: []string{`C:\WINDOWS\system32\nulsvc.exe`},
		hiddenASEPs: []string{
			`HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\Run|nulsvc` + "\x00" + `driver`,
			`HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\Run|` + strings.Repeat("A", 260),
		},
	}}
}

// Install creates the NUL-embedded and over-long Run values via the
// Native API (counted strings) plus their visible payload file.
func (g *RegNullGhost) Install(m *machine.Machine) error {
	exe := g.hiddenFiles[0]
	if err := m.DropFile(exe, []byte("MZ nulsvc")); err != nil {
		return err
	}
	run := `HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\Run`
	if err := m.Reg.SetString(run, "nulsvc\x00driver", exe); err != nil {
		return err
	}
	return m.Reg.SetString(run, strings.Repeat("A", 260), exe)
}

// --- §5 adversaries ---------------------------------------------------------------

// TargetMode selects how a targeting ghostware scopes its hiding.
type TargetMode int

// Targeting strategies from §5.
const (
	// HideFromUtilities hides only from the common OS utilities (Task
	// Manager, tlist, Explorer, cmd). A GhostBuster EXE running as its
	// own process never experiences the lie, so the plain tool misses it.
	HideFromUtilities TargetMode = iota + 1
	// HideExceptGhostBuster hides from every process except one named
	// ghostbuster.exe — the direct anti-GhostBuster attack.
	HideExceptGhostBuster
)

// Targeted is the §5 targeting ghostware.
type Targeted struct {
	hider
	mode TargetMode
}

// TargetedPayload is the file the targeting ghostware hides.
const TargetedPayload = `C:\tgt\secret-payload.exe`

// NewTargeted constructs a targeting ghostware with the given scope.
func NewTargeted(mode TargetMode) *Targeted {
	label := "scoped filter: hides only from OS utilities"
	if mode == HideExceptGhostBuster {
		label = "scoped filter: hides from everything except ghostbuster.exe"
	}
	return &Targeted{
		hider: hider{
			name: "Targeted", class: "targeting ghostware (§5)",
			techniques: []Technique{
				{API: winapi.APIFileEnum, Level: winapi.LevelFilter, Label: label},
				{API: winapi.APIProcEnum, Level: winapi.LevelFilter, Label: label},
			},
			hiddenFiles: []string{TargetedPayload},
			hiddenProcs: []string{"secret-payload.exe"},
		},
		mode: mode,
	}
}

var utilityNames = map[string]bool{
	"TASKMGR.EXE": true, "TLIST.EXE": true, "EXPLORER.EXE": true, "CMD.EXE": true, "REGEDIT.EXE": true,
}

// Install drops the payload, starts its process, and installs the
// scoped hiding.
func (g *Targeted) Install(m *machine.Machine) error {
	mode := g.mode
	appliesTo := func(p winapi.Proc) bool {
		switch mode {
		case HideFromUtilities:
			return utilityNames[strings.ToUpper(p.Name)]
		case HideExceptGhostBuster:
			return !strings.EqualFold(p.Name, "ghostbuster.exe")
		default:
			return true
		}
	}
	act := func(m *machine.Machine) error {
		if _, err := m.StartProcess("secret-payload.exe", TargetedPayload); err != nil {
			return err
		}
		m.API.Install(winapi.NewFileHideHook(g.name, winapi.LevelFilter, "scoped filter", appliesTo,
			func(call *winapi.Call, e winapi.DirEntry) bool { return pathMatches(e.Path, "secret-payload") }))
		m.API.Install(winapi.NewProcHideHook(g.name, winapi.LevelFilter, "scoped filter", appliesTo,
			func(call *winapi.Call, p winapi.ProcEntry) bool {
				return strings.EqualFold(p.Name, "secret-payload.exe")
			}))
		return nil
	}
	if err := dropAndRegister(m, TargetedPayload, "MZ payload", act); err != nil {
		return err
	}
	if _, err := runHook(m, "tgt", TargetedPayload); err != nil {
		return err
	}
	return act(m)
}

// Decoy is the §5 mass-hiding attacker: it hides a large number of
// innocent files together with its own, to bury the real payload in
// triage noise. The *count* of hidden files then becomes the signal.
type Decoy struct {
	hider
	prefixes []string
}

// DecoyPayload is the decoy attacker's real payload.
const DecoyPayload = `C:\WINDOWS\system32\dcysvc.exe`

// NewDecoy constructs the decoy attacker; it will hide everything under
// the given path prefixes in addition to its own payload.
func NewDecoy(prefixes []string) *Decoy {
	return &Decoy{
		hider: hider{
			name: "Decoy", class: "mass-hiding attacker (§5)",
			techniques: []Technique{
				{API: winapi.APIFileEnum, Level: winapi.LevelSSDT, Label: "hides innocent files en masse plus its payload"},
			},
			hiddenFiles: []string{DecoyPayload},
		},
		prefixes: prefixes,
	}
}

// Install drops the payload and hides it along with all decoy prefixes.
func (g *Decoy) Install(m *machine.Machine) error {
	prefixes := g.prefixes
	act := func(m *machine.Machine) error {
		m.API.Install(winapi.NewFileHideHook(g.name, winapi.LevelSSDT, "mass hide", nil,
			func(call *winapi.Call, e winapi.DirEntry) bool {
				if pathMatches(e.Path, "dcysvc") {
					return true
				}
				up := strings.ToUpper(e.Path)
				for _, p := range prefixes {
					pu := strings.ToUpper(p)
					if up == pu || strings.HasPrefix(up, pu+`\`) {
						return true
					}
				}
				return false
			}))
		return nil
	}
	if err := dropAndRegister(m, DecoyPayload, "MZ decoy", act); err != nil {
		return err
	}
	if _, err := runHook(m, "dcysvc", DecoyPayload); err != nil {
		return err
	}
	return act(m)
}

// --- corpus listings ------------------------------------------------------------------

// DefaultHiderTargets is the user-selected content the commercial file
// hiders protect in the experiments.
var DefaultHiderTargets = []string{`C:\Private`}

// The per-figure membership and ordering of the catalog samples, as the
// paper presents them. The constructors themselves live in Catalog():
// these lists only select and order.
var (
	fig3Names = []string{
		"Urbin", "Mersting", "Vanquish", "Aphex", "Hacker Defender 1.0",
		"ProBot SE", "Hide Files 3.3", "Hide Folders XP",
		"Advanced Hide Folders", "File & Folder Protector",
	}
	fig4Names = []string{"Urbin", "Mersting", "Hacker Defender 1.0", "Vanquish", "ProBot SE", "Aphex"}
	fig6Names = []string{"Aphex", "Hacker Defender 1.0", "Berbew", "FU", "Vanquish"}
)

// Fig3Corpus returns the 10 file-hiding programs of Figure 3 in the
// paper's order. Fresh instances each call: install each on a fresh
// machine.
func Fig3Corpus() []Ghostware { return fromCatalog(fig3Names...) }

// Fig4Corpus returns the 6 Registry-hiding programs of Figure 4.
func Fig4Corpus() []Ghostware { return fromCatalog(fig4Names...) }

// Fig6Corpus returns the process/module-hiding programs of Figure 6.
// FU needs a hide target after install; its catalog Arm step (or the
// harness) drives that.
func Fig6Corpus() []Ghostware { return fromCatalog(fig6Names...) }

// DriverHider is the natural escalation the paper's §4 anticipates: once
// tools like AskStrider flag an unhidden driver, the next rootkit
// generation filters the driver-enumeration API too. The kernel's
// loaded-module list still holds the truth, so the driver cross-view
// diff exposes it.
type DriverHider struct{ hider }

// DriverHiderPath is the rootkit's driver image.
const DriverHiderPath = `C:\WINDOWS\system32\drivers\stlthdrv.sys`

// NewDriverHider constructs the driver-hiding rootkit.
func NewDriverHider() *DriverHider {
	return &DriverHider{hider{
		name: "DriverHider", class: "driver-hiding rootkit (extension)",
		techniques: []Technique{
			{API: winapi.APIDriverEnum, Level: winapi.LevelNtdll, Label: "filters EnumDeviceDrivers results"},
			{API: winapi.APIFileEnum, Level: winapi.LevelNtdll, Label: "hides its driver file"},
		},
		hiddenFiles: []string{DriverHiderPath},
	}}
}

// Install drops and loads the driver, then hides it from both the driver
// list and the filesystem view.
func (g *DriverHider) Install(m *machine.Machine) error {
	act := func(m *machine.Machine) error {
		if _, err := m.Kern.LoadDriver(DriverHiderPath); err != nil {
			return err
		}
		m.API.Install(winapi.NewDriverHideHook(g.name, winapi.LevelNtdll, "driver list filter", nil,
			func(call *winapi.Call, d winapi.ModEntry) bool {
				return pathMatches(d.Path, "stlthdrv")
			}))
		m.API.Install(winapi.NewFileHideHook(g.name, winapi.LevelNtdll, "file filter", nil,
			func(call *winapi.Call, e winapi.DirEntry) bool {
				return pathMatches(e.Path, "stlthdrv")
			}))
		return nil
	}
	if err := dropAndRegister(m, DriverHiderPath, "MZ stlthdrv", act); err != nil {
		return err
	}
	if _, err := serviceHook(m, "stlthdrv", `system32\drivers\stlthdrv.sys`); err != nil {
		return err
	}
	return act(m)
}
