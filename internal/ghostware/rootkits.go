package ghostware

import (
	"fmt"
	"strings"

	"ghostbuster/internal/kernel"
	"ghostbuster/internal/machine"
	"ghostbuster/internal/winapi"
)

// --- Urbin [ZU] ----------------------------------------------------------------
//
// Trojan captured from the wild. Alters per-process IAT entries of the
// file- and Registry-enumeration APIs to point at Trojan import
// functions; loaded into every process via an AppInit_DLLs hook, which
// it also hides (Figures 2, 3, 4).

// Urbin is the Urbin trojan.
type Urbin struct{ hider }

// NewUrbin constructs the trojan model.
func NewUrbin() *Urbin {
	const dll = `C:\WINDOWS\system32\msvsres.dll`
	return &Urbin{hider{
		name: "Urbin", class: "trojan (in the wild)",
		techniques: []Technique{
			{API: winapi.APIFileEnum, Level: winapi.LevelIAT, Label: "IAT entry of FindFirst(Next)File -> Trojan import"},
			{API: winapi.APIRegQuery, Level: winapi.LevelIAT, Label: "IAT entry of RegEnumValue -> Trojan import"},
		},
		hiddenFiles: []string{dll},
		hiddenASEPs: []string{`HKLM\SOFTWARE\Microsoft\Windows NT\CurrentVersion\Windows|AppInit_DLLs`},
	}}
}

// Install drops msvsres.dll, hooks AppInit_DLLs, and activates.
func (g *Urbin) Install(m *machine.Machine) error {
	return installAppInitTrojan(m, g.name, g.hiddenFiles[0])
}

// Mersting is the second in-the-wild AppInit trojan; identical technique
// with a different payload DLL (kbddfl.dll).
type Mersting struct{ hider }

// NewMersting constructs the trojan model.
func NewMersting() *Mersting {
	const dll = `C:\WINDOWS\system32\kbddfl.dll`
	return &Mersting{hider{
		name: "Mersting", class: "trojan (in the wild)",
		techniques: []Technique{
			{API: winapi.APIFileEnum, Level: winapi.LevelIAT, Label: "IAT entry of FindFirst(Next)File -> Trojan import"},
			{API: winapi.APIRegQuery, Level: winapi.LevelIAT, Label: "IAT entry of RegEnumValue -> Trojan import"},
		},
		hiddenFiles: []string{dll},
		hiddenASEPs: []string{`HKLM\SOFTWARE\Microsoft\Windows NT\CurrentVersion\Windows|AppInit_DLLs`},
	}}
}

// Install drops kbddfl.dll, hooks AppInit_DLLs, and activates.
func (g *Mersting) Install(m *machine.Machine) error {
	return installAppInitTrojan(m, g.name, g.hiddenFiles[0])
}

func installAppInitTrojan(m *machine.Machine, name, dllPath string) error {
	dllBase := baseName(dllPath)
	act := func(m *machine.Machine) error {
		m.API.Install(winapi.NewFileHideHook(name, winapi.LevelIAT,
			"IAT FindFirst(Next)File", nil,
			func(call *winapi.Call, e winapi.DirEntry) bool { return pathMatches(e.Path, dllBase) }))
		m.API.Install(winapi.NewRegHideHook(name, winapi.LevelIAT,
			"IAT RegEnumValue", nil, nil,
			func(call *winapi.Call, keyPath, valueName string) bool {
				return strings.HasSuffix(strings.ToUpper(keyPath), `CURRENTVERSION\WINDOWS`) &&
					strings.EqualFold(valueName, "AppInit_DLLs")
			}))
		return nil
	}
	if err := dropAndRegister(m, dllPath, "MZ trojan "+name, act); err != nil {
		return err
	}
	if _, err := appInitHook(m, dllBase); err != nil {
		return err
	}
	return act(m)
}

// --- Vanquish [ZV] ----------------------------------------------------------------
//
// Rootkit that directly modifies loaded in-memory API code (its function
// is called, then it calls the next OS function). Hides every
// "*vanquish*" file, hides its service ASEP hook, and blanks the
// vanquish.dll pathname out of each process's PEB module list.

// Vanquish is the Vanquish rootkit.
type Vanquish struct{ hider }

// NewVanquish constructs the rootkit model.
func NewVanquish() *Vanquish {
	return &Vanquish{hider{
		name: "Vanquish", class: "rootkit",
		techniques: []Technique{
			{API: winapi.APIFileEnum, Level: winapi.LevelUserCode, Label: "in-memory API code modification (call-then-chain)"},
			{API: winapi.APIRegQuery, Level: winapi.LevelUserCode, Label: "in-memory API code modification (call-then-chain)"},
			{API: winapi.APIModEnum, Level: winapi.LevelNone, Label: "blanks vanquish.dll pathname in PEB module lists"},
		},
		hiddenFiles: []string{`C:\WINDOWS\vanquish.exe`, `C:\WINDOWS\vanquish.dll`, `C:\vanquish.log`},
		hiddenASEPs: []string{`HKLM\SYSTEM\CurrentControlSet\Services\Vanquish`},
	}}
}

// Install drops the vanquish files, sets and hides its service hook,
// and activates (code patches + DLL injection with PEB blanking).
func (g *Vanquish) Install(m *machine.Machine) error {
	const exe = `C:\WINDOWS\vanquish.exe`
	const dll = `C:\WINDOWS\vanquish.dll`
	act := func(m *machine.Machine) error {
		if _, err := m.StartProcess("vanquish.exe", exe); err != nil {
			return err
		}
		m.API.Install(winapi.NewFileHideHook(g.name, winapi.LevelUserCode,
			"modified Kernel32 API code", nil,
			func(call *winapi.Call, e winapi.DirEntry) bool { return pathMatches(e.Path, "vanquish") }))
		m.API.Install(winapi.NewRegHideHook(g.name, winapi.LevelUserCode,
			"modified Advapi32 API code", nil,
			func(call *winapi.Call, keyPath, subkey string) bool {
				return strings.HasSuffix(strings.ToUpper(keyPath), `\SERVICES`) && strings.EqualFold(subkey, "Vanquish")
			}, nil))
		// Inject vanquish.dll into every running process and blank its
		// PEB pathname.
		inject := func(m *machine.Machine, pid uint64) error {
			if _, err := m.Kern.LoadModule(pid, dll); err != nil {
				return err
			}
			entry, err := m.Kern.FindModuleEntry(pid, "vanquish.dll")
			if err != nil {
				return err
			}
			return m.Kern.BlankModuleName(entry)
		}
		procs, err := m.Kern.ProcessesAdvanced()
		if err != nil {
			return err
		}
		for _, p := range procs {
			if p.Pid == kernel.SystemPid || strings.EqualFold(p.Name, "vanquish.exe") {
				continue
			}
			if err := inject(m, p.Pid); err != nil {
				return err
			}
		}
		// Processes created later get injected too (the rootkit watches
		// process creation, as the real one does).
		m.RegisterProcessNotifier(func(m *machine.Machine, pid uint64, name string) error {
			if strings.EqualFold(name, "vanquish.exe") {
				return nil
			}
			return inject(m, pid)
		})
		return nil
	}
	if err := dropAndRegister(m, exe, "MZ vanquish", act); err != nil {
		return err
	}
	if err := m.DropFile(dll, []byte("MZ vanquish dll")); err != nil {
		return err
	}
	if err := m.DropFile(`C:\vanquish.log`, []byte("injected\n")); err != nil {
		return err
	}
	if _, err := serviceHook(m, "Vanquish", exe); err != nil {
		return err
	}
	return act(m)
}

// --- Aphex / AFX Windows Rootkit 2003 [ZAF] -----------------------------------------
//
// Hides files whose names match a configurable prefix (default "~") via
// an inline detour of Kernel32!FindFirst(Next)File; hides processes by
// rewriting the IAT entry of NtDll!NtQuerySystemInformation; hides its
// Run-key hook.

// Aphex is the AFX rootkit.
type Aphex struct {
	hider
	prefix string
	exe    string
}

// NewAphex constructs the rootkit with the default "~" name prefix.
func NewAphex() *Aphex { return NewAphexWithPrefix("~") }

// NewAphexWithPrefix constructs the rootkit with a custom hide prefix.
func NewAphexWithPrefix(prefix string) *Aphex {
	exe := `C:\WINDOWS\system32\` + prefix + `afx.exe`
	return &Aphex{
		hider: hider{
			name: "Aphex", class: "rootkit",
			techniques: []Technique{
				{API: winapi.APIFileEnum, Level: winapi.LevelUserCode, Label: "jmp detour in Kernel32!FindFirst(Next)File"},
				{API: winapi.APIRegQuery, Level: winapi.LevelUserCode, Label: "jmp detour in Advapi32 Registry APIs"},
				{API: winapi.APIProcEnum, Level: winapi.LevelIAT, Label: "IAT entry of NtDll!NtQuerySystemInformation"},
			},
			hiddenFiles: []string{exe, `C:\WINDOWS\system32\` + prefix + `afx.log`},
			hiddenASEPs: []string{`HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\Run|` + prefix + `afx`},
			hiddenProcs: []string{prefix + "afx.exe"},
		},
		prefix: prefix,
		exe:    exe,
	}
}

// Install drops the prefix-named files, sets and hides a Run hook, and
// activates.
func (g *Aphex) Install(m *machine.Machine) error {
	prefix := g.prefix
	runName := prefix + "afx"
	act := func(m *machine.Machine) error {
		if _, err := m.StartProcess(baseName(g.exe), g.exe); err != nil {
			return err
		}
		hasPrefix := func(s string) bool { return strings.HasPrefix(strings.ToUpper(s), strings.ToUpper(prefix)) }
		m.API.Install(winapi.NewFileHideHook(g.name, winapi.LevelUserCode,
			"Kernel32 detour", nil,
			func(call *winapi.Call, e winapi.DirEntry) bool { return hasPrefix(e.Name) }))
		m.API.Install(winapi.NewRegHideHook(g.name, winapi.LevelUserCode,
			"Advapi32 detour", nil, nil,
			func(call *winapi.Call, keyPath, valueName string) bool {
				return strings.HasSuffix(strings.ToUpper(keyPath), `\RUN`) && strings.EqualFold(valueName, runName)
			}))
		m.API.Install(winapi.NewProcHideHook(g.name, winapi.LevelIAT,
			"IAT NtQuerySystemInformation", nil,
			func(call *winapi.Call, p winapi.ProcEntry) bool { return hasPrefix(p.Name) }))
		return nil
	}
	if err := dropAndRegister(m, g.exe, "MZ afx", act); err != nil {
		return err
	}
	if err := m.DropFile(g.hiddenFiles[1], []byte("afx log\n")); err != nil {
		return err
	}
	if _, err := runHook(m, runName, g.exe); err != nil {
		return err
	}
	return act(m)
}

// --- Hacker Defender 1.0 [ZH] ----------------------------------------------------
//
// "The most popular Windows rootkit today" (§6). Detours
// NtDll!NtQueryDirectoryFile and NtDll!NtQuerySystemInformation with jmp
// instructions; hides every file/process matching the patterns in
// hxdef100.ini; hides both of its service ASEP hooks (service +
// driver). Its driver remains visible in the loaded-driver list, which
// is how AskStrider catches it.

// HackerDefender is Hacker Defender 1.0.
type HackerDefender struct {
	hider
	patterns []string
	// exempt lists process names that see the truth (no hiding). The §5
	// dilemma experiment configures the AV scanner here: showing itself
	// to InocIT.exe trades GhostBuster detection for signature detection.
	exempt []string
}

// HackerDefenderDir is the rootkit's install directory.
const HackerDefenderDir = `C:\hxdef`

// NewHackerDefender constructs the rootkit with its default hxdef*
// patterns.
func NewHackerDefender() *HackerDefender { return NewHackerDefenderWithPatterns([]string{"hxdef"}) }

// NewHackerDefenderExempting constructs the rootkit configured NOT to
// hide from the given process names (the "don't hide from the AV
// scanner" horn of the §5 dilemma).
func NewHackerDefenderExempting(exempt []string) *HackerDefender {
	g := NewHackerDefender()
	g.exempt = exempt
	return g
}

// NewHackerDefenderWithPatterns constructs the rootkit with custom
// hxdef100.ini hide patterns (name fragments).
func NewHackerDefenderWithPatterns(patterns []string) *HackerDefender {
	return &HackerDefender{
		hider: hider{
			name: "Hacker Defender 1.0", class: "rootkit",
			techniques: []Technique{
				{API: winapi.APIFileEnum, Level: winapi.LevelNtdll, Label: "jmp detour in NtDll!NtQueryDirectoryFile"},
				{API: winapi.APIRegQuery, Level: winapi.LevelNtdll, Label: "jmp detour in NtDll!NtEnumerateKey"},
				{API: winapi.APIProcEnum, Level: winapi.LevelNtdll, Label: "jmp detour in NtDll!NtQuerySystemInformation"},
			},
			hiddenFiles: []string{
				HackerDefenderDir, // the install directory matches hxdef* too
				HackerDefenderDir + `\hxdef100.exe`,
				HackerDefenderDir + `\hxdef100.ini`,
				`C:\WINDOWS\system32\hxdefdrv.sys`,
			},
			hiddenASEPs: []string{
				`HKLM\SYSTEM\CurrentControlSet\Services\HackerDefender100`,
				`HKLM\SYSTEM\CurrentControlSet\Services\HackerDefenderDrv100`,
			},
			hiddenProcs: []string{"hxdef100.exe"},
		},
		patterns: patterns,
	}
}

// Install drops hxdef100.exe/.ini and hxdefdrv.sys, sets and hides its
// two service hooks, and activates.
func (g *HackerDefender) Install(m *machine.Machine) error {
	exe := HackerDefenderDir + `\hxdef100.exe`
	ini := HackerDefenderDir + `\hxdef100.ini`
	drv := `C:\WINDOWS\system32\hxdefdrv.sys`
	installPatterns := g.patterns
	exempt := g.exempt
	// The rootkit re-reads its ini at every startup; editing the file
	// changes what is hidden after the next boot.
	currentPatterns := func(m *machine.Machine) []string {
		vp, err := machine.VolumePath(ini)
		if err != nil {
			return installPatterns
		}
		data, err := m.Disk.ReadFile(vp)
		if err != nil {
			return installPatterns
		}
		if parsed := ParseHxdefIni(data); len(parsed) > 0 {
			return parsed
		}
		return installPatterns
	}
	var patterns []string
	matches := func(s string) bool {
		up := strings.ToUpper(s)
		for _, p := range patterns {
			if strings.Contains(up, strings.ToUpper(p)) {
				return true
			}
		}
		return false
	}
	var appliesTo func(winapi.Proc) bool
	if len(exempt) > 0 {
		appliesTo = func(p winapi.Proc) bool {
			for _, e := range exempt {
				if strings.EqualFold(p.Name, e) {
					return false
				}
			}
			return true
		}
	}
	act := func(m *machine.Machine) error {
		patterns = currentPatterns(m)
		if _, err := m.StartProcess("hxdef100.exe", exe); err != nil {
			return err
		}
		if _, err := m.Kern.LoadDriver(drv); err != nil {
			return err
		}
		m.API.Install(winapi.NewFileHideHook(g.name, winapi.LevelNtdll,
			"NtQueryDirectoryFile detour", appliesTo,
			func(call *winapi.Call, e winapi.DirEntry) bool { return matches(e.Name) }))
		m.API.Install(winapi.NewRegHideHook(g.name, winapi.LevelNtdll,
			"NtEnumerateKey detour", appliesTo,
			func(call *winapi.Call, keyPath, subkey string) bool {
				return strings.HasSuffix(strings.ToUpper(keyPath), `\SERVICES`) && strings.HasPrefix(strings.ToUpper(subkey), "HACKERDEFENDER")
			}, nil))
		m.API.Install(winapi.NewProcHideHook(g.name, winapi.LevelNtdll,
			"NtQuerySystemInformation detour", appliesTo,
			func(call *winapi.Call, p winapi.ProcEntry) bool { return matches(p.Name) }))
		return nil
	}
	if err := dropAndRegister(m, exe, "MZ hxdef", act); err != nil {
		return err
	}
	if err := m.DropFile(ini, BuildHxdefIni(g.patterns)); err != nil {
		return err
	}
	if err := m.DropFile(drv, []byte("MZ hxdefdrv")); err != nil {
		return err
	}
	if _, err := serviceHook(m, "HackerDefender100", exe); err != nil {
		return err
	}
	if _, err := serviceHook(m, "HackerDefenderDrv100", `system32\hxdefdrv.sys`); err != nil {
		return err
	}
	return act(m)
}

// --- Berbew [ZB] ----------------------------------------------------------------
//
// Backdoor that hides its (randomly named) process by placing a jmp
// inside the in-memory NtDll!NtQuerySystemInformation code (Figure 5).

// Berbew is the Berbew backdoor.
type Berbew struct {
	hider
	exeName string // filled at Install (random)
}

// NewBerbew constructs the backdoor model.
func NewBerbew() *Berbew {
	return &Berbew{hider: hider{
		name: "Berbew", class: "backdoor",
		techniques: []Technique{
			{API: winapi.APIProcEnum, Level: winapi.LevelNtdll, Label: "jmp inside NtDll!NtQuerySystemInformation code"},
		},
	}}
}

// Install drops a randomly named exe, adds a visible Run hook, and
// activates the process-hiding detour.
func (g *Berbew) Install(m *machine.Machine) error {
	g.exeName = randName(m) + ".exe"
	g.hiddenProcs = []string{g.exeName}
	exe := `C:\WINDOWS\system32\` + g.exeName
	name := g.exeName
	act := func(m *machine.Machine) error {
		if _, err := m.StartProcess(name, exe); err != nil {
			return err
		}
		m.API.Install(winapi.NewProcHideHook(g.name, winapi.LevelNtdll,
			"NtQuerySystemInformation jmp", nil,
			func(call *winapi.Call, p winapi.ProcEntry) bool { return strings.EqualFold(p.Name, name) }))
		return nil
	}
	if err := dropAndRegister(m, exe, "MZ berbew", act); err != nil {
		return err
	}
	if _, err := runHook(m, strings.TrimSuffix(g.exeName, ".exe"), exe); err != nil {
		return err
	}
	return act(m)
}

// ExeName returns the random image name chosen at install.
func (g *Berbew) ExeName() string { return g.exeName }

// --- FU [ZFU] ----------------------------------------------------------------
//
// The DKOM rootkit: its driver removes a target process's EPROCESS from
// the Active Process List. No API is hooked anywhere; the process
// remains fully functional because the scheduler works from threads, not
// from that list. Only GhostBuster's advanced mode (CID-table traversal)
// sees through it (Figure 6).

// FU is the FU rootkit.
type FU struct{ hider }

// NewFU constructs the rootkit model.
func NewFU() *FU {
	return &FU{hider{
		name: "FU", class: "rootkit (DKOM)",
		techniques: []Technique{
			{API: winapi.APIProcEnum, Level: winapi.LevelNone, Label: "DKOM: unlinks EPROCESS from the Active Process List"},
		},
	}}
}

// Install drops fu.exe and msdirectx.sys and loads the driver. Use
// HideProcess ("fu -ph <pid>") to hide targets.
func (g *FU) Install(m *machine.Machine) error {
	exe := `C:\fu\fu.exe`
	drv := `C:\fu\msdirectx.sys`
	act := func(m *machine.Machine) error {
		_, err := m.Kern.LoadDriver(drv)
		return err
	}
	if err := dropAndRegister(m, exe, "MZ fu", act); err != nil {
		return err
	}
	if err := m.DropFile(drv, []byte("MZ msdirectx")); err != nil {
		return err
	}
	if _, err := serviceHook(m, "msdirectx", drv); err != nil {
		return err
	}
	return act(m)
}

// HideProcess is "fu -ph <pid>": DKOM-unlink the process from the
// Active Process List, leaving its entry self-linked.
func (g *FU) HideProcess(m *machine.Machine, pid uint64) error {
	eproc, err := m.Kern.EprocessByPid(pid)
	if err != nil {
		return fmt.Errorf("ghostware: fu -ph %d: %w", pid, err)
	}
	if err := m.Kern.Mem.ListRemove(eproc + kernel.EprocActiveLinks); err != nil {
		return err
	}
	g.hiddenProcs = appendUnique(g.hiddenProcs, pidName(m, pid))
	return nil
}

// HideByName hides the first live process with the given image name.
func (g *FU) HideByName(m *machine.Machine, imageName string) error {
	pid, err := m.Kern.PidByName(imageName)
	if err != nil {
		return err
	}
	return g.HideProcess(m, pid)
}

func pidName(m *machine.Machine, pid uint64) string {
	procs, err := m.Kern.ProcessesAdvanced()
	if err != nil {
		return ""
	}
	for _, p := range procs {
		if p.Pid == pid {
			return p.Name
		}
	}
	return ""
}

func appendUnique(list []string, s string) []string {
	if s == "" {
		return list
	}
	for _, x := range list {
		if strings.EqualFold(x, s) {
			return list
		}
	}
	return append(list, s)
}
