package ghostware

import "testing"

func TestCatalogIsThePaperCorpus(t *testing.T) {
	cat := Catalog()
	if len(cat) != 12 {
		t.Fatalf("catalog entries = %d, want the paper's 12 samples", len(cat))
	}
	seen := map[string]bool{}
	for _, e := range cat {
		if e.Name == "" || e.New == nil {
			t.Errorf("incomplete entry: %+v", e)
			continue
		}
		if seen[e.Name] {
			t.Errorf("duplicate catalog name %q", e.Name)
		}
		seen[e.Name] = true
		if e.Extension {
			t.Errorf("%s: paper-corpus entry marked Extension", e.Name)
		}
		g := e.New()
		if g.Name() != e.Name {
			t.Errorf("entry %q constructs ghostware named %q", e.Name, g.Name())
		}
		if g.Class() != e.Class {
			t.Errorf("%s: entry class %q != instance class %q", e.Name, e.Class, g.Class())
		}
		// Fresh instances each call: per-install state must not be shared.
		if e.New() == g {
			t.Errorf("%s: New returns a shared instance", e.Name)
		}
	}
}

func TestExtensionsAreMarked(t *testing.T) {
	for _, e := range Extensions() {
		if !e.Extension {
			t.Errorf("%s: extension entry not marked", e.Name)
		}
		if _, ok := Lookup(e.Name); !ok {
			t.Errorf("%s: not reachable via Lookup", e.Name)
		}
	}
}

func TestLookupIsCaseInsensitive(t *testing.T) {
	for _, name := range []string{"fu", "FU", "hacker defender 1.0", "Win32nameGhost"} {
		if _, ok := Lookup(name); !ok {
			t.Errorf("Lookup(%q) failed", name)
		}
	}
	if _, ok := Lookup("NotARootkit"); ok {
		t.Error("Lookup accepted an unknown name")
	}
}

func TestFigureCorporaDeriveFromCatalog(t *testing.T) {
	for _, tc := range []struct {
		figure string
		got    []Ghostware
		want   []string
	}{
		{"Fig3", Fig3Corpus(), fig3Names},
		{"Fig4", Fig4Corpus(), fig4Names},
		{"Fig6", Fig6Corpus(), fig6Names},
	} {
		if len(tc.got) != len(tc.want) {
			t.Errorf("%s: %d samples, want %d", tc.figure, len(tc.got), len(tc.want))
			continue
		}
		for i, g := range tc.got {
			if g.Name() != tc.want[i] {
				t.Errorf("%s[%d] = %s, want %s", tc.figure, i, g.Name(), tc.want[i])
			}
		}
	}
}
