package ghostware

import (
	"fmt"
	"strings"

	"ghostbuster/internal/machine"
	"ghostbuster/internal/winapi"
)

// ADSGhost hides its payload in NTFS Alternate Data Streams attached to
// innocent system files (paper §6 future work: "Stealth software may
// hide their persistent state in a form for which current OS does not
// provide query/enumeration APIs ... Alternate Data Streams (ADS)").
// No hook is installed anywhere: directory enumeration simply never
// mentions streams. Only the raw MFT parse lists them.
type ADSGhost struct {
	hider
	hostFile string
	streams  []string
}

// NewADSGhost constructs the ADS hider. It attaches streams to
// C:\WINDOWS\system32\calc-host.txt (created if missing).
func NewADSGhost() *ADSGhost {
	host := `C:\WINDOWS\system32\calc-host.txt`
	streams := []string{"payload.exe", "cfg"}
	g := &ADSGhost{
		hider: hider{
			name: "ADSGhost", class: "ADS hider (§6 future work)",
			techniques: []Technique{
				{API: winapi.APIFileEnum, Level: winapi.LevelNone, Label: "payload in NTFS alternate data streams"},
			},
		},
		hostFile: host,
		streams:  streams,
	}
	for _, s := range streams {
		g.hiddenFiles = append(g.hiddenFiles, host+":"+s)
	}
	return g
}

// HostFile returns the innocent carrier file.
func (g *ADSGhost) HostFile() string { return g.hostFile }

// Install drops the innocent host file and tucks the payload into its
// streams.
func (g *ADSGhost) Install(m *machine.Machine) error {
	if !m.FileExists(g.hostFile) {
		if err := m.DropFile(g.hostFile, []byte("perfectly ordinary notes")); err != nil {
			return err
		}
	}
	vp, err := machine.VolumePath(g.hostFile)
	if err != nil {
		return err
	}
	for _, s := range g.streams {
		if err := m.Disk.CreateStream(vp, s, []byte("MZ ads payload "+s)); err != nil {
			return fmt.Errorf("ghostware: creating stream %s: %w", s, err)
		}
	}
	// An ASEP hook keeps the payload running across reboots; the hook
	// launch command references the stream directly (cmd.exe supports
	// starting file:stream paths). The hook itself is visible — the
	// stealth is all in the file system.
	_, err = runHook(m, "adsldr", g.hostFile+":payload.exe")
	return err
}

// IsBenignStreamName reports whether a stream name is part of normal
// Windows operation (the browser's Zone.Identifier markers) rather than
// a hiding place. Used by the core noise filters.
func IsBenignStreamName(name string) bool {
	return strings.EqualFold(name, "Zone.Identifier")
}
