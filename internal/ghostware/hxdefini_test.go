package ghostware

import (
	"strings"
	"testing"

	"ghostbuster/internal/core"
)

func TestParseHxdefIni(t *testing.T) {
	ini := []byte(`# comment
[Hidden Table]
hxdef*
secret.doc
; another comment

[Startup Run]
notpattern.exe
`)
	got := ParseHxdefIni(ini)
	if len(got) != 2 || got[0] != "hxdef" || got[1] != "secret.doc" {
		t.Errorf("patterns = %v", got)
	}
	if got := ParseHxdefIni(nil); len(got) != 0 {
		t.Errorf("empty ini = %v", got)
	}
}

func TestBuildParseRoundTrip(t *testing.T) {
	patterns := []string{"hxdef", "rk"}
	got := ParseHxdefIni(BuildHxdefIni(patterns))
	if len(got) != len(patterns) {
		t.Fatalf("round trip = %v", got)
	}
	for i := range patterns {
		if got[i] != patterns[i] {
			t.Errorf("pattern %d = %q", i, got[i])
		}
	}
}

// TestEditedIniChangesHidingAfterReboot: the rootkit re-reads its config
// at startup, so adding a pattern to the (hidden) ini extends the hiding
// on the next boot — the behaviour the paper describes for Hacker
// Defender's "patterns specified in hxdef100.ini".
func TestEditedIniChangesHidingAfterReboot(t *testing.T) {
	m := freshVictim(t)
	hd := NewHackerDefender()
	if err := hd.Install(m); err != nil {
		t.Fatal(err)
	}
	if err := m.DropFile(`C:\loot\stolen.doc`, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// Initially the loot is visible.
	call := m.SystemCall()
	entries, err := m.API.EnumDirWin32(call, `C:\loot`)
	if err != nil || len(entries) != 1 {
		t.Fatalf("loot should be visible: %v %v", entries, err)
	}
	// The operator edits the ini (below the API layer — it is hidden
	// from Win32 anyway) and reboots.
	if err := m.Disk.WriteFile(`\hxdef\hxdef100.ini`, BuildHxdefIni([]string{"hxdef", "stolen"}), m.Now()); err != nil {
		t.Fatal(err)
	}
	if err := m.Reboot(); err != nil {
		t.Fatal(err)
	}
	call = m.SystemCall()
	entries, err = m.API.EnumDirWin32(call, `C:\loot`)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("stolen.doc should now be hidden: %+v", entries)
	}
	// And GhostBuster finds the extended hide set.
	r, err := core.NewDetector(m).ScanFiles()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range r.Hidden {
		if strings.Contains(f.ID, "STOLEN.DOC") {
			found = true
		}
	}
	if !found {
		t.Errorf("extended hiding not detected: %+v", r.Hidden)
	}
}
