package ghostware

import (
	"strings"
	"testing"

	"ghostbuster/internal/core"
	"ghostbuster/internal/machine"
)

func smallProfile() machine.Profile {
	p := machine.DefaultProfile()
	p.DiskUsedGB = 1
	p.Churn = nil
	return p
}

// freshVictim builds a machine with the user content the commercial
// hiders protect.
func freshVictim(t *testing.T) *machine.Machine {
	t.Helper()
	m, err := machine.New(smallProfile())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{`C:\Private\diary.txt`, `C:\Private\taxes.xls`} {
		if err := m.DropFile(f, []byte("user data")); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

// hiddenIDs runs the file diff and returns the hidden IDs.
func hiddenFileIDs(t *testing.T, m *machine.Machine) map[string]bool {
	t.Helper()
	r, err := core.NewDetector(m).ScanFiles()
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	for _, f := range r.Hidden {
		out[f.ID] = true
	}
	return out
}

// TestFig3EachProgramsHiddenFilesDetected reproduces Figure 3: for each
// of the 10 file-hiding programs, every ground-truth hidden file shows
// up in the cross-view diff, with zero extra findings beyond the
// program's own hidden set.
func TestFig3EachProgramsHiddenFilesDetected(t *testing.T) {
	for _, g := range Fig3Corpus() {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			m := freshVictim(t)
			if err := g.Install(m); err != nil {
				t.Fatalf("install: %v", err)
			}
			hidden := hiddenFileIDs(t, m)
			want := expandHiddenFiles(m, g)
			if len(want) == 0 {
				t.Fatalf("program declares no hidden files")
			}
			for _, path := range want {
				id := strings.ToUpper(path)
				if !hidden[id] {
					t.Errorf("hidden file %s not detected (findings: %v)", path, keys(hidden))
				}
			}
			// Every finding must be attributable: either a declared hidden
			// file or inside a hidden directory subtree.
			for id := range hidden {
				if !attributable(id, want) {
					t.Errorf("unattributed finding %s", id)
				}
			}
		})
	}
}

// expandHiddenFiles returns the declared hidden files plus, for hidden
// directories, their contained files.
func expandHiddenFiles(m *machine.Machine, g Ghostware) []string {
	var out []string
	for _, p := range g.HiddenFiles() {
		out = append(out, p)
		vp, err := machine.VolumePath(p)
		if err != nil {
			continue
		}
		infos, err := m.Disk.ReadDir(vp)
		if err != nil {
			continue // not a directory
		}
		for _, inf := range infos {
			out = append(out, p+`\`+inf.Name)
		}
	}
	return out
}

func attributable(id string, want []string) bool {
	for _, w := range want {
		wu := strings.ToUpper(w)
		if id == wu || strings.HasPrefix(id, wu+`\`) {
			return true
		}
	}
	return false
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestFig4EachProgramsHiddenHooksDetected reproduces Figure 4.
func TestFig4EachProgramsHiddenHooksDetected(t *testing.T) {
	for _, g := range Fig4Corpus() {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			m := freshVictim(t)
			if err := g.Install(m); err != nil {
				t.Fatalf("install: %v", err)
			}
			r, err := core.NewDetector(m).ScanASEPs()
			if err != nil {
				t.Fatal(err)
			}
			found := map[string]bool{}
			for _, f := range r.Hidden {
				found[f.ID] = true
			}
			want := g.HiddenASEPs()
			if len(want) == 0 {
				t.Fatal("program declares no hidden ASEPs")
			}
			for _, spec := range want {
				if !hookDetected(found, spec) {
					t.Errorf("hidden ASEP %q not detected (findings: %v)", printableSpec(spec), keys(found))
				}
			}
			if len(found) != len(want) {
				t.Errorf("found %d hidden hooks, want %d: %v", len(found), len(want), keys(found))
			}
		})
	}
}

// hookDetected matches a ground-truth spec ("KEY" or "KEY|VALUE")
// against finding IDs ("KEY -> VALUE", upper-cased).
func hookDetected(found map[string]bool, spec string) bool {
	keyPart := spec
	valPart := ""
	if i := strings.IndexByte(spec, '|'); i >= 0 {
		keyPart, valPart = spec[:i], spec[i+1:]
	}
	for id := range found {
		if !strings.HasPrefix(id, strings.ToUpper(keyPart)) {
			continue
		}
		if valPart == "" || strings.HasSuffix(id, strings.ToUpper(valPart)) {
			return true
		}
	}
	return false
}

func printableSpec(s string) string { return strings.ReplaceAll(s, "\x00", `\0`) }

// TestFig6ProcessAndModuleHiding reproduces Figure 6: Aphex, Hacker
// Defender and Berbew are caught with the Active Process List as truth;
// FU needs advanced mode; Vanquish's hidden module is caught by the
// module diff.
func TestFig6ProcessAndModuleHiding(t *testing.T) {
	apiHiders := []Ghostware{NewAphex(), NewHackerDefender(), NewBerbew()}
	for _, g := range apiHiders {
		g := g
		t.Run(g.Name()+"/normal-mode", func(t *testing.T) {
			m := freshVictim(t)
			if err := g.Install(m); err != nil {
				t.Fatal(err)
			}
			d := core.NewDetector(m)
			r, err := d.ScanProcesses()
			if err != nil {
				t.Fatal(err)
			}
			wantProcs := g.HiddenProcs()
			if len(r.Hidden) != len(wantProcs) {
				t.Fatalf("hidden procs = %+v, want %d", r.Hidden, len(wantProcs))
			}
			for _, name := range wantProcs {
				ok := false
				for _, f := range r.Hidden {
					if strings.Contains(f.ID, strings.ToUpper(name)) {
						ok = true
					}
				}
				if !ok {
					t.Errorf("hidden process %s not detected", name)
				}
			}
		})
	}

	t.Run("FU/advanced-mode-required", func(t *testing.T) {
		m := freshVictim(t)
		fu := NewFU()
		if err := fu.Install(m); err != nil {
			t.Fatal(err)
		}
		if _, err := m.StartProcess("backdoor.exe", `C:\fu\backdoor.exe`); err != nil {
			t.Fatal(err)
		}
		if err := fu.HideByName(m, "backdoor.exe"); err != nil {
			t.Fatal(err)
		}
		d := core.NewDetector(m)
		r, err := d.ScanProcesses()
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Hidden) != 0 {
			t.Errorf("normal mode should miss FU (APL is only a truth approximation): %+v", r.Hidden)
		}
		d.Advanced = true
		r, err = d.ScanProcesses()
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Hidden) != 1 || !strings.Contains(r.Hidden[0].ID, "BACKDOOR.EXE") {
			t.Fatalf("advanced mode hidden = %+v", r.Hidden)
		}
	})

	t.Run("Vanquish/hidden-module", func(t *testing.T) {
		m := freshVictim(t)
		if err := NewVanquish().Install(m); err != nil {
			t.Fatal(err)
		}
		r, err := core.NewDetector(m).ScanModules()
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Hidden) < 2 {
			t.Fatalf("vanquish.dll should be hidden inside many processes, got %d", len(r.Hidden))
		}
		for _, f := range r.Hidden {
			if !strings.Contains(f.ID, "VANQUISH.DLL") {
				t.Errorf("unexpected hidden module %s", f.ID)
			}
		}
	})
}

// TestHackerDefenderDriverVisibleToDriverEnum: AskStrider can spot a
// Hacker Defender infection via its unhidden driver (§4).
func TestHackerDefenderDriverVisible(t *testing.T) {
	m := freshVictim(t)
	if err := NewHackerDefender().Install(m); err != nil {
		t.Fatal(err)
	}
	drvs, err := m.API.EnumDriversWin32(m.SystemCall())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range drvs {
		if strings.Contains(strings.ToUpper(d.Path), "HXDEFDRV.SYS") {
			found = true
		}
	}
	if !found {
		t.Error("hxdefdrv.sys should remain visible in the driver list")
	}
}

// TestNameTrickGhostsDetectedWithoutHooks: the Win32-restriction and
// NUL-name hiders install no hook, yet the cross-view diff finds them.
func TestNameTrickGhostsDetected(t *testing.T) {
	m := freshVictim(t)
	if err := NewWin32NameGhost().Install(m); err != nil {
		t.Fatal(err)
	}
	if len(m.API.Hooks()) != 0 {
		t.Fatal("name-trick ghost must not install hooks")
	}
	hidden := hiddenFileIDs(t, m)
	if len(hidden) != 4 {
		t.Errorf("hidden = %v, want the 4 hostile names", keys(hidden))
	}

	m2 := freshVictim(t)
	if err := NewRegNullGhost().Install(m2); err != nil {
		t.Fatal(err)
	}
	r, err := core.NewDetector(m2).ScanASEPs()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) != 2 {
		t.Errorf("hidden reg hooks = %+v, want NUL-name and overlong-name", r.Hidden)
	}
}

// TestFileHiderScopesItsOwnUI: File & Folder Protector's manager still
// sees the protected files (IRP-based process scoping).
func TestFileHiderScopesItsOwnUI(t *testing.T) {
	m := freshVictim(t)
	g := NewFileFolderProtector(DefaultHiderTargets)
	if err := g.Install(m); err != nil {
		t.Fatal(err)
	}
	// Regular processes cannot see the protected folder.
	entries, err := m.API.EnumDirWin32(m.SystemCall(), `C:`)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.EqualFold(e.Name, "Private") {
			t.Error("protected folder visible to explorer.exe")
		}
	}
	// The manager UI process sees it.
	if _, err := m.StartProcess(g.ExemptProcess(), `C:\Program Files\ffp\ffp.exe`); err != nil {
		t.Fatal(err)
	}
	uiCall, err := m.CallAs(g.ExemptProcess())
	if err != nil {
		t.Fatal(err)
	}
	entries, err = m.API.EnumDirWin32(uiCall, `C:`)
	if err != nil {
		t.Fatal(err)
	}
	seen := false
	for _, e := range entries {
		if strings.EqualFold(e.Name, "Private") {
			seen = true
		}
	}
	if !seen {
		t.Error("manager UI should be exempt from its own filter")
	}
}

// TestTargetedGhostEvadesPlainToolOnly (§5): a ghostware hiding only
// from utilities is invisible to them but a GhostBuster running as its
// own process sees the truth in the high-level scan too — so the plain
// diff misses it. Scanning *as* a utility process exposes it.
func TestTargetedGhostEvadesPlainToolOnly(t *testing.T) {
	m := freshVictim(t)
	if err := NewTargeted(HideFromUtilities).Install(m); err != nil {
		t.Fatal(err)
	}
	if _, err := m.StartProcess("ghostbuster.exe", `C:\tools\ghostbuster.exe`); err != nil {
		t.Fatal(err)
	}
	d := core.NewDetector(m)
	d.AsProcess = "ghostbuster.exe"
	r, err := d.ScanFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) != 0 {
		t.Errorf("plain GhostBuster should not experience the hiding: %+v", r.Hidden)
	}
	// The DLL-injection countermeasure scans from inside taskmgr.exe.
	if _, err := m.StartProcess("taskmgr.exe", `C:\WINDOWS\system32\taskmgr.exe`); err != nil {
		t.Fatal(err)
	}
	d.AsProcess = "taskmgr.exe"
	r, err = d.ScanFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) != 1 || !strings.Contains(r.Hidden[0].ID, "SECRET-PAYLOAD") {
		t.Errorf("scan-as-taskmgr hidden = %+v", r.Hidden)
	}
}

// TestAntiGhostBusterTargeting (§5): hiding from everything except
// ghostbuster.exe defeats the plain tool but not the injected scans.
func TestAntiGhostBusterTargeting(t *testing.T) {
	m := freshVictim(t)
	if err := NewTargeted(HideExceptGhostBuster).Install(m); err != nil {
		t.Fatal(err)
	}
	if _, err := m.StartProcess("ghostbuster.exe", `C:\tools\ghostbuster.exe`); err != nil {
		t.Fatal(err)
	}
	d := core.NewDetector(m)
	d.AsProcess = "ghostbuster.exe"
	r, err := d.ScanFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) != 0 {
		t.Errorf("anti-GhostBuster targeting should evade the plain tool: %+v", r.Hidden)
	}
	d.AsProcess = "explorer.exe"
	r, err = d.ScanFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) != 1 {
		t.Errorf("injected scan should catch it: %+v", r.Hidden)
	}
}

// TestDecoyTriggersMassHidingAnomaly (§5).
func TestDecoyTriggersMassHidingAnomaly(t *testing.T) {
	m := freshVictim(t)
	for i := 0; i < 150; i++ {
		if err := m.DropFile(`C:\Shared\doc`+itoa(i)+`.txt`, []byte("innocent")); err != nil {
			t.Fatal(err)
		}
	}
	if err := NewDecoy([]string{`C:\Shared`}).Install(m); err != nil {
		t.Fatal(err)
	}
	r, err := core.NewDetector(m).ScanFiles()
	if err != nil {
		t.Fatal(err)
	}
	if r.MassHiding == nil {
		t.Fatalf("mass-hiding anomaly not raised (%d hidden)", len(r.Hidden))
	}
	// The real payload is in there too.
	found := false
	for _, f := range r.Hidden {
		if strings.Contains(f.ID, "DCYSVC") {
			found = true
		}
	}
	if !found {
		t.Error("decoy payload missing from findings")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// TestPersistenceAcrossReboot: ghostware with intact ASEP hooks
// reinstalls its hiding at every boot; deleting the hidden keys disables
// it (the paper's removal flow, §3/§6).
func TestPersistenceAcrossReboot(t *testing.T) {
	m := freshVictim(t)
	hd := NewHackerDefender()
	if err := hd.Install(m); err != nil {
		t.Fatal(err)
	}
	if err := m.Reboot(); err != nil {
		t.Fatal(err)
	}
	// Still hiding after reboot.
	r, err := core.NewDetector(m).ScanFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) == 0 {
		t.Fatal("hooks did not reinstall across reboot")
	}
	// Remove the (now known) ASEP keys and reboot: the rootkit is dead
	// and its files become visible.
	for _, key := range hd.HiddenASEPs() {
		if err := m.Reg.DeleteKeyTree(key); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Reboot(); err != nil {
		t.Fatal(err)
	}
	r, err = core.NewDetector(m).ScanFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) != 0 {
		t.Errorf("after hook removal + reboot, still hidden: %+v", r.Hidden)
	}
	// Files are visible and can be deleted now.
	call := m.SystemCall()
	entries, err := m.API.EnumDirWin32(call, HackerDefenderDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Errorf("hxdef files should be visible now: %+v", entries)
	}
	// Files first, then the (now empty) directory.
	files := hd.HiddenFiles()
	for i := len(files) - 1; i >= 0; i-- {
		if err := m.RemoveFile(files[i]); err != nil {
			t.Errorf("removing %s: %v", files[i], err)
		}
	}
}

// TestRandomNamesAreDeterministicPerSeed: ProBot/Berbew random names
// reproduce across identical machines (bench stability).
func TestRandomNamesAreDeterministicPerSeed(t *testing.T) {
	m1 := freshVictim(t)
	m2 := freshVictim(t)
	p1 := NewProBotSE()
	p2 := NewProBotSE()
	if err := p1.Install(m1); err != nil {
		t.Fatal(err)
	}
	if err := p2.Install(m2); err != nil {
		t.Fatal(err)
	}
	if p1.Base() == "" || p1.Base() != p2.Base() {
		t.Errorf("random bases differ across identical seeds: %q vs %q", p1.Base(), p2.Base())
	}
}

// TestTechniqueTaxonomyCoversFig2: the corpus spans all six file-hiding
// technique levels of Figure 2.
func TestTechniqueTaxonomyCoversFig2(t *testing.T) {
	levels := map[string]bool{}
	for _, g := range Fig3Corpus() {
		for _, tech := range g.Techniques() {
			if tech.API == "FileEnum" {
				levels[tech.Level.String()] = true
			}
		}
	}
	// IAT, user-code (two variants share a level), ntdll, SSDT, filter.
	if len(levels) < 5 {
		t.Errorf("file-hiding levels covered = %v", levels)
	}
}

// TestADSGhostDetectedOnlyByRawScan: the ADS hider installs no hook yet
// the file diff exposes its streams (§6 future work implemented).
func TestADSGhostDetected(t *testing.T) {
	m := freshVictim(t)
	g := NewADSGhost()
	if err := g.Install(m); err != nil {
		t.Fatal(err)
	}
	if len(m.API.Hooks()) != 0 {
		t.Fatal("ADS ghost must not install hooks")
	}
	r, err := core.NewDetector(m).ScanFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) != len(g.HiddenFiles()) {
		t.Fatalf("hidden = %+v, want %d streams", r.Hidden, len(g.HiddenFiles()))
	}
	for _, f := range r.Hidden {
		if !strings.Contains(f.ID, ":") {
			t.Errorf("non-stream finding %s", f.ID)
		}
	}
	// The carrier file itself is visible and innocent.
	call := m.SystemCall()
	entries, err := m.API.EnumDirWin32(call, `C:\WINDOWS\system32`)
	if err != nil {
		t.Fatal(err)
	}
	seen := false
	for _, e := range entries {
		if strings.EqualFold(e.Name, "calc-host.txt") {
			seen = true
		}
	}
	if !seen {
		t.Error("carrier file should be visible")
	}
}

// TestDriverHiderDetectedByDriverDiff: the escalated rootkit that
// filters driver enumeration is exposed by the driver cross-view diff
// and by the file diff.
func TestDriverHiderDetected(t *testing.T) {
	m := freshVictim(t)
	if err := NewDriverHider().Install(m); err != nil {
		t.Fatal(err)
	}
	// Invisible in the API driver list.
	drvs, err := m.API.EnumDriversWin32(m.SystemCall())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range drvs {
		if strings.Contains(strings.ToUpper(d.Path), "STLTHDRV") {
			t.Error("driver visible through the API")
		}
	}
	d := core.NewDetector(m)
	r, err := d.ScanDrivers()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) != 1 || !strings.Contains(r.Hidden[0].ID, "STLTHDRV.SYS") {
		t.Fatalf("driver diff hidden = %+v", r.Hidden)
	}
	files, err := d.ScanFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(files.Hidden) != 1 {
		t.Errorf("file diff hidden = %+v", files.Hidden)
	}
}

// TestADSGhostSurvivesRebootViaVisibleHook: its Run hook is visible (the
// stealth is in the filesystem), and the stream persists across reboot.
func TestADSGhostPersistence(t *testing.T) {
	m := freshVictim(t)
	g := NewADSGhost()
	if err := g.Install(m); err != nil {
		t.Fatal(err)
	}
	if err := m.Reboot(); err != nil {
		t.Fatal(err)
	}
	vp, err := machine.VolumePath(g.HostFile())
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.Disk.ReadStream(vp, "payload.exe")
	if err != nil || !strings.Contains(string(data), "ads payload") {
		t.Errorf("stream after reboot = %q err %v", data, err)
	}
}

// TestVanquishInjectsNewProcesses: the rootkit watches process creation
// and injects its DLL into processes started after infection.
func TestVanquishInjectsNewProcesses(t *testing.T) {
	m := freshVictim(t)
	if err := NewVanquish().Install(m); err != nil {
		t.Fatal(err)
	}
	before, err := core.NewDetector(m).ScanModules()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.StartProcess("notepad.exe", `C:\WINDOWS\notepad.exe`); err != nil {
		t.Fatal(err)
	}
	after, err := core.NewDetector(m).ScanModules()
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Hidden) != len(before.Hidden)+1 {
		t.Errorf("hidden modules %d -> %d, want +1 for the new process", len(before.Hidden), len(after.Hidden))
	}
}

// TestCoInfection: several rootkits with different techniques on ONE
// machine — the detector must attribute every hidden resource without
// the hooks interfering with each other (hook stacks compose).
func TestCoInfection(t *testing.T) {
	m := freshVictim(t)
	urbin := NewUrbin()
	hd := NewHackerDefender()
	fu := NewFU()
	for _, g := range []Ghostware{urbin, hd, fu} {
		if err := g.Install(m); err != nil {
			t.Fatalf("install %s: %v", g.Name(), err)
		}
	}
	if _, err := m.StartProcess("loot.exe", `C:\loot.exe`); err != nil {
		t.Fatal(err)
	}
	if err := fu.HideByName(m, "loot.exe"); err != nil {
		t.Fatal(err)
	}

	d := core.NewDetector(m)
	d.Advanced = true

	files, err := d.ScanFiles()
	if err != nil {
		t.Fatal(err)
	}
	wantFiles := len(urbin.HiddenFiles()) + len(hd.HiddenFiles())
	if len(files.Hidden) != wantFiles {
		t.Errorf("hidden files = %d, want %d: %+v", len(files.Hidden), wantFiles, files.Hidden)
	}

	aseps, err := d.ScanASEPs()
	if err != nil {
		t.Fatal(err)
	}
	wantASEPs := len(urbin.HiddenASEPs()) + len(hd.HiddenASEPs())
	if len(aseps.Hidden) != wantASEPs {
		t.Errorf("hidden ASEPs = %d, want %d: %+v", len(aseps.Hidden), wantASEPs, aseps.Hidden)
	}

	procs, err := d.ScanProcesses()
	if err != nil {
		t.Fatal(err)
	}
	// hxdef100.exe (API-hidden) + loot.exe (DKOM-hidden).
	if len(procs.Hidden) != 2 {
		t.Errorf("hidden procs = %+v", procs.Hidden)
	}
	// And removal of everything still works: delete all hidden hooks,
	// reboot, and the machine scans clean for ASEPs/files from those two.
	for _, spec := range append(urbin.HiddenASEPs(), hd.HiddenASEPs()...) {
		key := spec
		if i := strings.IndexByte(spec, '|'); i >= 0 {
			key = spec[:i]
			if err := m.Reg.DeleteValue(key, spec[i+1:]); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := m.Reg.DeleteKeyTree(key); err != nil {
			t.Fatal(err)
		}
	}
	// FU's (visible) service hook too.
	if err := m.Reg.DeleteKeyTree(`HKLM\SYSTEM\CurrentControlSet\Services\msdirectx`); err != nil {
		t.Fatal(err)
	}
	if err := m.Reboot(); err != nil {
		t.Fatal(err)
	}
	after, err := d.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range after {
		if r.Infected() {
			t.Errorf("after removal+reboot, %s still hidden: %+v", r.Kind, r.Hidden)
		}
	}
}

// TestWeekLongSoakZeroInsideFPs: a simulated week of churn and nightly
// reboots must never produce an inside-the-box false positive (run
// without -short).
func TestWeekLongSoakZeroInsideFPs(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	p := smallProfile()
	p.Churn = []machine.ChurnKind{machine.ChurnAVLogger, machine.ChurnPrefetch, machine.ChurnSystemRestore, machine.ChurnBrowserTemp}
	m, err := machine.New(p)
	if err != nil {
		t.Fatal(err)
	}
	d := core.NewDetector(m)
	d.Advanced = true
	for day := 0; day < 7; day++ {
		if err := m.RunChurn(8 * 60); err != nil {
			t.Fatal(err)
		}
		reports, err := d.ScanAll()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range reports {
			if r.Infected() {
				t.Fatalf("day %d: %s false positives: %+v", day, r.Kind, r.Hidden)
			}
		}
		if err := m.Reboot(); err != nil {
			t.Fatal(err)
		}
	}
}
