// Package ghostware implements behavioural models of the 12 real-world
// stealth programs the paper evaluates (Figures 3, 4 and 6), plus the
// §5 adversaries (targeted hiding, mass-hiding decoys) and the pure
// name-trick hiders (§2 Win32 restrictions, §3 embedded-NUL names).
//
// Each program installs exactly what its real counterpart did: the same
// dropped files, the same ASEP hooks, and an interception at the same
// level of the API call path. GhostBuster never special-cases any of
// them — uniform detection of this diverse corpus is the paper's central
// claim.
package ghostware

import (
	"fmt"
	"strings"

	"ghostbuster/internal/machine"
	"ghostbuster/internal/winapi"
)

// Technique describes one interception a program performs, for the
// Figure 2 / Figure 5 taxonomy.
type Technique struct {
	API   winapi.API
	Level winapi.Level
	Label string
}

// Ghostware is one installable stealth program.
type Ghostware interface {
	// Name is the program's name as the paper uses it.
	Name() string
	// Class is "rootkit/trojan", "key-logger", "commercial file hider"...
	Class() string
	// Techniques lists the interceptions the program performs.
	Techniques() []Technique
	// Install drops files, sets ASEP hooks, registers the boot
	// activation, and activates immediately (the program is running
	// after Install returns).
	Install(m *machine.Machine) error
	// HiddenFiles returns the full paths of files the program hides
	// (ground truth for the Figure 3 experiment).
	HiddenFiles() []string
	// HiddenASEPs returns the key paths of ASEP hooks the program hides
	// (ground truth for Figure 4). Entries are "KEY" or "KEY|VALUE".
	HiddenASEPs() []string
	// HiddenProcs returns image names of processes the program hides
	// (ground truth for Figure 6).
	HiddenProcs() []string
}

// hider is the common implementation scaffold.
type hider struct {
	name        string
	class       string
	techniques  []Technique
	hiddenFiles []string
	hiddenASEPs []string
	hiddenProcs []string
}

func (h *hider) Name() string            { return h.name }
func (h *hider) Class() string           { return h.class }
func (h *hider) Techniques() []Technique { return append([]Technique(nil), h.techniques...) }
func (h *hider) HiddenFiles() []string   { return append([]string(nil), h.hiddenFiles...) }
func (h *hider) HiddenASEPs() []string   { return append([]string(nil), h.hiddenASEPs...) }
func (h *hider) HiddenProcs() []string   { return append([]string(nil), h.hiddenProcs...) }

// pathMatches reports whether a full path's base name contains the
// (case-insensitive) fragment — the match rule most of the corpus uses.
func pathMatches(path, fragment string) bool {
	return strings.Contains(strings.ToUpper(baseName(path)), strings.ToUpper(fragment))
}

func baseName(path string) string {
	if i := strings.LastIndexByte(path, '\\'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// randName generates a deterministic pseudo-random 8-letter name using
// the machine's seeded RNG (ProBot SE and Berbew install under random
// names).
func randName(m *machine.Machine) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	b := make([]byte, 8)
	for i := range b {
		b[i] = letters[m.Rand.Intn(len(letters))]
	}
	return string(b)
}

// dropAndRegister drops an executable image and registers its boot
// activation.
func dropAndRegister(m *machine.Machine, path string, payload string, act machine.Activation) error {
	if err := m.DropFile(path, []byte(payload)); err != nil {
		return fmt.Errorf("ghostware: dropping %s: %w", path, err)
	}
	m.RegisterImage(path, act)
	return nil
}

// serviceHook creates a Services ASEP entry.
func serviceHook(m *machine.Machine, svcName, imagePath string) (string, error) {
	key := `HKLM\SYSTEM\CurrentControlSet\Services\` + svcName
	if err := m.Reg.CreateKey(key); err != nil {
		return "", err
	}
	if err := m.Reg.SetString(key, "ImagePath", imagePath); err != nil {
		return "", err
	}
	return key, nil
}

// runHook creates a Run-key ASEP entry.
func runHook(m *machine.Machine, valueName, command string) (string, error) {
	key := `HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\Run`
	if err := m.Reg.SetString(key, valueName, command); err != nil {
		return "", err
	}
	return key, nil
}

// appInitHook appends a DLL to AppInit_DLLs.
func appInitHook(m *machine.Machine, dll string) (string, error) {
	key := `HKLM\SOFTWARE\Microsoft\Windows NT\CurrentVersion\Windows`
	cur, err := m.Reg.GetValue(key, "AppInit_DLLs")
	if err != nil {
		return "", err
	}
	data := cur.String()
	if data != "" {
		data += " "
	}
	data += dll
	if err := m.Reg.SetString(key, "AppInit_DLLs", data); err != nil {
		return "", err
	}
	return key, nil
}
