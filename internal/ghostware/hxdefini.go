package ghostware

import (
	"bufio"
	"strings"
)

// Hacker Defender is configured through hxdef100.ini: the [Hidden Table]
// section lists name patterns (with trailing '*' wildcards) for the
// files and processes to hide. The real rootkit re-reads this file at
// startup, so editing the ini changes what disappears after the next
// boot — behaviour this model reproduces: the Install method writes the
// ini and every activation parses it back from disk.

// ParseHxdefIni extracts the hide patterns from an hxdef100.ini. A
// pattern like "hxdef*" matches any name containing the prefix before
// the wildcard; a bare name matches as a fragment. Lines outside
// [Hidden Table], comments (#, ;) and blanks are ignored.
func ParseHxdefIni(data []byte) []string {
	var patterns []string
	inTable := false
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, ";") {
			continue
		}
		if strings.HasPrefix(line, "[") {
			inTable = strings.EqualFold(line, "[Hidden Table]")
			continue
		}
		if !inTable {
			continue
		}
		patterns = append(patterns, strings.TrimSuffix(line, "*"))
	}
	return patterns
}

// BuildHxdefIni renders an ini for the given patterns.
func BuildHxdefIni(patterns []string) []byte {
	var sb strings.Builder
	sb.WriteString("# Hacker Defender configuration\n[Hidden Table]\n")
	for _, p := range patterns {
		sb.WriteString(p)
		sb.WriteString("*\n")
	}
	sb.WriteString("\n[Startup Run]\n")
	return []byte(sb.String())
}
