package askstrider

import (
	"strings"
	"testing"

	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/machine"
)

func smallMachine(t *testing.T) *machine.Machine {
	t.Helper()
	p := machine.DefaultProfile()
	p.DiskUsedGB = 1
	p.Churn = nil
	m, err := machine.New(p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCleanMachineNothingRecent(t *testing.T) {
	m := smallMachine(t)
	// Reference time after the machine was built: nothing is "recent".
	since := m.Now() + 1
	r, err := Run(m, since)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Items) == 0 {
		t.Fatal("no items enumerated")
	}
	if len(r.Recent) != 0 {
		t.Errorf("recent on idle machine: %+v", r.Recent)
	}
}

// TestHackerDefenderRevealedByUnhiddenDriver reproduces the §4 remark:
// the rootkit hides its files and process, but its freshly installed
// driver stays on the driver list — and AskStrider flags it as recent.
func TestHackerDefenderRevealedByUnhiddenDriver(t *testing.T) {
	m := smallMachine(t)
	since := m.Now() // everything from now on is "recent"
	m.Clock.Advance(1)
	if err := ghostware.NewHackerDefender().Install(m); err != nil {
		t.Fatal(err)
	}
	r, err := Run(m, since)
	if err != nil {
		t.Fatal(err)
	}
	// The hidden process must NOT be in the report (AskStrider sees only
	// the API view).
	for _, it := range r.Items {
		if strings.Contains(strings.ToUpper(it.Display), "HXDEF100.EXE") {
			t.Errorf("hidden process leaked into AskStrider: %+v", it)
		}
	}
	// But the unhidden driver is, and it is recent.
	hits := r.FindRecent("hxdefdrv.sys")
	if len(hits) != 1 || hits[0].Kind != "driver" {
		t.Fatalf("driver hits = %+v", hits)
	}
}

// TestRecentFlagsNewSoftware: a freshly installed (non-hiding) program's
// process and image show up as recent — AskStrider's everyday use.
func TestRecentFlagsNewSoftware(t *testing.T) {
	m := smallMachine(t)
	since := m.Now()
	m.Clock.Advance(1)
	if err := m.DropFile(`C:\Program Files\newapp\newapp.exe`, []byte("MZ new")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.StartProcess("newapp.exe", `C:\Program Files\newapp\newapp.exe`); err != nil {
		t.Fatal(err)
	}
	r, err := Run(m, since)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.FindRecent("newapp.exe")) == 0 {
		t.Errorf("new software not flagged; recent = %+v", r.Recent)
	}
	// Pre-existing system binaries are not recent.
	if len(r.FindRecent("kernel32.dll")) != 0 {
		t.Error("old system DLL flagged as recent")
	}
}
