// Package askstrider models the AskStrider tool the paper builds on
// [WR+04]: "what has changed on my machine lately?" — it enumerates
// processes, their modules, and loaded drivers through the ordinary
// APIs, then annotates each entry with how recently its backing file
// changed. The paper notes (§4) that "AskStrider can be used to quickly
// detect a Hacker Defender infection today by revealing its unhidden
// hxdefdrv.sys driver": the rootkit hides its files and process but not
// its driver, and the driver's backing file is brand new.
//
// AskStrider is a complement, not a competitor, to GhostBuster: it sees
// only what the APIs show, so it catches sloppy hiding (the unhidden
// driver) and recent changes, while the cross-view diff catches hiding
// itself.
package askstrider

import (
	"fmt"
	"sort"
	"strings"

	"ghostbuster/internal/machine"
)

// Item is one annotated entry.
type Item struct {
	Kind     string // "process", "module", "driver"
	Display  string
	Path     string // backing file
	Modified uint64 // backing file mtime (FILETIME ticks), 0 if unknown
	Recent   bool   // modified after the reference time
}

// Report is an AskStrider run.
type Report struct {
	Items  []Item
	Recent []Item // the "what changed lately" shortlist
}

// Run enumerates through the API stack as the given vantage process and
// flags entries whose backing file changed at or after `since`.
func Run(m *machine.Machine, since uint64) (*Report, error) {
	call := m.SystemCall()
	r := &Report{}

	procs, err := m.API.EnumProcessesWin32(call)
	if err != nil {
		return nil, fmt.Errorf("askstrider: process enum: %w", err)
	}
	for _, p := range procs {
		r.addItem(m, Item{Kind: "process", Display: fmt.Sprintf("%s (pid %d)", p.Name, p.Pid), Path: p.Path}, since)
		mods, err := m.API.EnumModulesWin32(call, p.Pid)
		if err != nil {
			continue
		}
		for _, mod := range mods {
			r.addItem(m, Item{Kind: "module", Display: fmt.Sprintf("pid %d: %s", p.Pid, mod.Path), Path: mod.Path}, since)
		}
	}
	drvs, err := m.API.EnumDriversWin32(call)
	if err != nil {
		return nil, fmt.Errorf("askstrider: driver enum: %w", err)
	}
	for _, d := range drvs {
		r.addItem(m, Item{Kind: "driver", Display: d.Path, Path: d.Path}, since)
	}
	sort.Slice(r.Recent, func(i, j int) bool { return r.Recent[i].Display < r.Recent[j].Display })
	return r, nil
}

func (r *Report) addItem(m *machine.Machine, it Item, since uint64) {
	if vp, err := machine.VolumePath(it.Path); err == nil {
		if info, err := m.Disk.Stat(vp); err == nil {
			it.Modified = info.Modified
			if info.Created > it.Modified {
				it.Modified = info.Created
			}
		}
	}
	it.Recent = it.Modified >= since && since > 0 && it.Modified > 0
	r.Items = append(r.Items, it)
	if it.Recent {
		r.Recent = append(r.Recent, it)
	}
}

// FindRecent returns the recent items whose path contains the fragment.
func (r *Report) FindRecent(fragment string) []Item {
	var out []Item
	for _, it := range r.Recent {
		if strings.Contains(strings.ToUpper(it.Path), strings.ToUpper(fragment)) {
			out = append(out, it)
		}
	}
	return out
}
